//! The keystream-generation worker pool.
//!
//! Stands in for the paper's distributed setup (roughly 80 desktop machines
//! plus three servers driven by Python): the configured key space is split
//! into `config.workers` deterministic *logical streams*, each stream's
//! contribution is generated into a private collector, and the partials are
//! merged in stream order. Because streams never share mutable state during
//! generation and all counter cells are additive, the result depends only on
//! the configuration — never on scheduling or on how many OS threads did the
//! work.
//!
//! Threading is delegated to the shared execution layer ([`rc4_exec`]):
//! [`generate_with_exec`] takes an [`Executor`] whose worker budget is
//! independent of the logical stream count. When threads outnumber streams,
//! each stream is further split into contiguous *segments* — a segment worker
//! fast-forwards the stream's RNG to its offset (replaying only the key
//! draws, a small fraction of the RC4 cost) and records its share into a
//! private collector. Segment boundaries are a scheduling detail: cells are
//! additive, so any segmentation produces cell-for-cell identical results
//! (pinned by this module's tests).
//!
//! Inside each worker the RC4 work runs through the batched multi-key engine
//! ([`rc4_accel::AutoBatch`]): keys are drawn from the deterministic stream
//! in engine-sized groups, the engine steps all of their KSA/PRGA lanes at
//! once, and the finished keystreams are counted in draw order.
//!
//! Long runs can be aborted cooperatively: [`generate_with_cancel`] takes an
//! [`AtomicBool`] that every worker polls between key batches, so an
//! experiment driver (e.g. `rc4-attacks`' `ExperimentContext`) can stop a
//! multi-minute generation within milliseconds of the flag being raised.

use std::sync::atomic::AtomicBool;

use rc4_exec::Executor;

use crate::{
    dataset::{DatasetError, GenerationConfig, KeystreamCollector},
    keygen::KeyGenerator,
};

/// How many keystreams a worker generates between cancellation-flag polls.
/// Small enough to abort within milliseconds, large enough that the relaxed
/// atomic load is invisible next to the RC4 work per key. Shared with the
/// store-driven generation loop ([`crate::storable::record_keys_batched`]).
pub const CANCEL_POLL_INTERVAL: u64 = 512;

/// One contiguous slice of a logical stream's key range, assigned to one
/// execution task: skip the first `skip` keys of stream `worker`, then record
/// the next `keys`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Segment {
    pub(crate) worker: u64,
    pub(crate) skip: u64,
    pub(crate) keys: u64,
}

/// Splits the configured key space into execution segments for `threads`
/// workers: one segment per stream when streams saturate the thread budget,
/// otherwise each stream is cut into up to `threads` contiguous segments so
/// even a single-stream configuration keeps every thread busy.
///
/// The plan only affects scheduling — any plan covering the same
/// (stream, range) set produces identical cells.
pub(crate) fn segment_plan(config: &GenerationConfig, threads: usize) -> Vec<Segment> {
    let streams = config.workers as u64;
    let per_stream = if (threads as u64) <= streams {
        1
    } else {
        threads as u64
    };
    let mut plan = Vec::new();
    for w in 0..streams {
        let keys = config.keys_for_worker(w);
        let segments = per_stream.min(keys.max(1));
        let base = keys / segments;
        let extra = keys % segments;
        let mut skip = 0u64;
        for s in 0..segments {
            let len = base + u64::from(s < extra);
            if len > 0 {
                plan.push(Segment {
                    worker: w,
                    skip,
                    keys: len,
                });
            }
            skip += len;
        }
    }
    plan
}

/// Generates `config.keys` keystreams and accumulates them into `collector`.
///
/// The keys are split evenly across `config.workers` logical streams; stream
/// `w` derives its keys from `(config.seed, w)`, so the generated set of keys
/// — and therefore the resulting statistics — depend only on the
/// configuration, not on scheduling.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for invalid configurations and
/// propagates [`DatasetError::ShapeMismatch`] if merging fails (which would
/// indicate a bug in the collector's `clone_empty`).
///
/// # Examples
///
/// ```
/// use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig, KeystreamCollector};
///
/// let mut ds = SingleByteDataset::new(4);
/// generate(&mut ds, &GenerationConfig::with_keys(1_000).workers(2)).unwrap();
/// assert_eq!(ds.keystreams(), 1_000);
/// ```
pub fn generate<C>(collector: &mut C, config: &GenerationConfig) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    generate_with_cancel(collector, config, None)
}

/// [`generate`] with a cooperative cancellation flag.
///
/// Runs one thread per logical stream (`config.workers`), reproducing the
/// historical pool bit for bit. Workers poll `cancel` every
/// [`CANCEL_POLL_INTERVAL`] keys. When the flag is raised mid-run the pool
/// stops promptly and returns [`DatasetError::Cancelled`] **without** merging
/// the partial per-worker counts, leaving `collector` exactly as it was
/// handed in (single-worker runs accumulate in place and are instead left
/// partially filled — on `Cancelled`, discard the collector either way).
///
/// # Errors
///
/// Everything [`generate`] returns, plus [`DatasetError::Cancelled`] when the
/// flag was observed set before the run completed.
pub fn generate_with_cancel<C>(
    collector: &mut C,
    config: &GenerationConfig,
    cancel: Option<&AtomicBool>,
) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    generate_with_exec(
        collector,
        config,
        &Executor::new(config.workers).with_cancel(cancel),
    )
}

/// [`generate`] on an explicit [`Executor`], decoupling the *thread budget*
/// (`exec.workers()`) from the *logical stream count* (`config.workers`).
///
/// The generated key set — and therefore every counter cell — depends only on
/// `config`; the executor decides how many OS threads share the work. A
/// one-thread executor records every stream in place in stream order (no
/// clones), a larger budget splits the streams into segments recorded into
/// private collectors and merged in deterministic order. Both paths are
/// cell-for-cell identical.
///
/// # Errors
///
/// Everything [`generate`] returns, plus [`DatasetError::Cancelled`] when the
/// executor's cancellation flag was observed set before the run completed.
pub fn generate_with_exec<C>(
    collector: &mut C,
    config: &GenerationConfig,
    exec: &Executor<'_>,
) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    config.validate()?;
    let needed = collector.required_len();
    let cancel = exec.cancel_flag();
    if exec.is_cancelled() {
        return Err(DatasetError::Cancelled);
    }

    if exec.workers() == 1 {
        for w in 0..config.workers as u64 {
            let mut gen = KeyGenerator::new(config.seed, w, config.key_len);
            run_worker(
                collector,
                &mut gen,
                config.keys_for_worker(w),
                needed,
                cancel,
            );
            if exec.is_cancelled() {
                return Err(DatasetError::Cancelled);
            }
        }
        return Ok(());
    }

    // Empty per-segment collectors are cloned up front on this thread: the
    // collector type is only `Send`, so tasks receive their private clone as
    // part of the work item instead of cloning through a shared reference.
    let tasks: Vec<(Segment, C)> = segment_plan(config, exec.workers())
        .into_iter()
        .map(|segment| (segment, collector.clone_empty()))
        .collect();
    let partials: Vec<C> = exec
        .map(tasks, |_, (segment, mut local)| {
            let mut gen = KeyGenerator::new(config.seed, segment.worker, config.key_len);
            let mut scratch = vec![0u8; config.key_len];
            for _ in 0..segment.skip {
                gen.fill_key(&mut scratch);
            }
            run_worker(&mut local, &mut gen, segment.keys, needed, cancel);
            Ok::<_, DatasetError>(local)
        })
        .map_err(DatasetError::from)?;
    if exec.is_cancelled() {
        return Err(DatasetError::Cancelled);
    }
    for partial in partials {
        collector.merge(partial)?;
    }
    Ok(())
}

/// Inner loop of one worker: generate `keys` keystreams of `needed` bytes
/// through the batched engine, polling `cancel` between batches.
///
/// Keys are drawn in exactly the order the historical scalar loop drew them
/// and counted in draw order, so the collector's cells are identical; only
/// the RC4 work in between is batched.
fn run_worker<C: KeystreamCollector>(
    collector: &mut C,
    gen: &mut KeyGenerator,
    keys: u64,
    needed: usize,
    cancel: Option<&AtomicBool>,
) {
    let key_len = gen.key_len();
    let mut sink = CollectorSink { collector, needed };
    crate::storable::walk_keys_batched(&mut sink, gen, key_len, keys, cancel);
}

/// Adapter running a collector's uniform-key walk through the shared batched
/// key-walk loop (`crate::storable::walk_keys_batched`), so the worker pool
/// and the store-driven generation share ONE batch-sizing / cancellation
/// cadence implementation.
struct CollectorSink<'a, C: KeystreamCollector> {
    collector: &'a mut C,
    needed: usize,
}

impl<C: KeystreamCollector> crate::storable::BatchSink for CollectorSink<'_, C> {
    fn needed(&self) -> usize {
        self.needed
    }

    fn prepare(&mut self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64 {
        gen.fill_key(key);
        0
    }

    fn record(&mut self, _meta: u64, ks: &[u8]) {
        self.collector.record_keystream(ks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pairs::PairDataset, single::SingleByteDataset};
    use std::sync::atomic::Ordering;

    #[test]
    fn single_worker_generates_requested_keys() {
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, &GenerationConfig::with_keys(500)).unwrap();
        assert_eq!(ds.keystreams(), 500);
        // Each position saw exactly 500 samples.
        assert_eq!(ds.counts_at(1).iter().sum::<u64>(), 500);
    }

    #[test]
    fn multi_worker_key_count_is_exact() {
        let mut ds = SingleByteDataset::new(2);
        generate(&mut ds, &GenerationConfig::with_keys(1_003).workers(4)).unwrap();
        assert_eq!(ds.keystreams(), 1_003);
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let config = GenerationConfig::with_keys(400).workers(3).seed(99);
        let mut a = SingleByteDataset::new(8);
        let mut b = SingleByteDataset::new(8);
        generate(&mut a, &config).unwrap();
        generate(&mut b, &config).unwrap();
        for r in 1..=8 {
            assert_eq!(a.counts_at(r), b.counts_at(r));
        }
    }

    #[test]
    fn worker_count_does_not_change_totals() {
        // Different logical stream counts generate different key sets, but the
        // number of samples and overall normalization must match.
        let mut one = PairDataset::consecutive(3).unwrap();
        let mut four = one.clone_empty();
        generate(&mut one, &GenerationConfig::with_keys(600).workers(1)).unwrap();
        generate(&mut four, &GenerationConfig::with_keys(600).workers(4)).unwrap();
        assert_eq!(one.keystreams(), four.keystreams());
        assert_eq!(
            one.joint_counts(0).iter().sum::<u64>(),
            four.joint_counts(0).iter().sum::<u64>()
        );
    }

    /// Scalar reference for a worker pool run: the exact historical
    /// one-key-at-a-time loop over the same per-worker key streams.
    fn scalar_pool_reference(config: &GenerationConfig, positions: usize) -> SingleByteDataset {
        let mut ds = SingleByteDataset::new(positions);
        let mut key = vec![0u8; config.key_len];
        let mut ks = vec![0u8; positions];
        for w in 0..config.workers {
            let mut gen = KeyGenerator::new(config.seed, w as u64, config.key_len);
            for _ in 0..config.keys_for_worker(w as u64) {
                gen.fill_key(&mut key);
                let mut prga = rc4::Prga::new(&key).expect("valid key length");
                prga.fill(&mut ks);
                ds.record_keystream(&ks);
            }
        }
        ds
    }

    #[test]
    fn batched_pool_is_cell_identical_to_scalar_loop() {
        // 555 keys over 2 workers: per-worker allotments (278/277) are not
        // multiples of any engine lane count, so both workers drain a
        // partial tail batch.
        let config = GenerationConfig::with_keys(555).workers(2).seed(77);
        let mut pooled = SingleByteDataset::new(5);
        generate(&mut pooled, &config).unwrap();
        let reference = scalar_pool_reference(&config, 5);
        assert_eq!(pooled.keystreams(), reference.keystreams());
        for r in 1..=5 {
            assert_eq!(pooled.counts_at(r), reference.counts_at(r));
        }
    }

    #[test]
    fn thread_budget_does_not_change_cells() {
        // The new invariance guarantee: for a FIXED logical stream count, any
        // executor thread budget produces cell-identical datasets — including
        // budgets above and below the stream count (which trigger in-stream
        // segmentation and stream batching respectively).
        for streams in [1usize, 3] {
            let config = GenerationConfig::with_keys(1_201).workers(streams).seed(9);
            let reference = scalar_pool_reference(&config, 6);
            for threads in [1usize, 2, 4, 7] {
                let mut ds = SingleByteDataset::new(6);
                generate_with_exec(&mut ds, &config, &Executor::new(threads)).unwrap();
                assert_eq!(
                    ds.keystreams(),
                    reference.keystreams(),
                    "streams {streams}, threads {threads}"
                );
                for r in 1..=6 {
                    assert_eq!(
                        ds.counts_at(r),
                        reference.counts_at(r),
                        "streams {streams}, threads {threads}, position {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_plan_covers_every_stream_exactly() {
        for (keys, streams, threads) in
            [(1_000u64, 1usize, 4usize), (17, 3, 8), (5, 8, 2), (1, 1, 4)]
        {
            let config = GenerationConfig::with_keys(keys).workers(streams);
            let plan = segment_plan(&config, threads);
            for w in 0..streams as u64 {
                let mut expect_skip = 0u64;
                let mut total = 0u64;
                for seg in plan.iter().filter(|s| s.worker == w) {
                    assert_eq!(seg.skip, expect_skip, "segments must be contiguous");
                    expect_skip += seg.keys;
                    total += seg.keys;
                    assert!(seg.keys > 0, "empty segments must be dropped");
                }
                assert_eq!(total, config.keys_for_worker(w), "stream {w} coverage");
            }
        }
    }

    #[test]
    fn more_workers_than_keys() {
        // 3 keys across 8 workers: workers 0..3 generate one key each, the
        // rest none — the pool must neither hang nor over-count.
        let config = GenerationConfig::with_keys(3).workers(8).seed(5);
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, &config).unwrap();
        assert_eq!(ds.keystreams(), 3);
        let reference = scalar_pool_reference(&config, 4);
        for r in 1..=4 {
            assert_eq!(ds.counts_at(r), reference.counts_at(r));
        }
    }

    #[test]
    fn single_key_single_worker() {
        let config = GenerationConfig::with_keys(1).seed(9);
        let mut ds = SingleByteDataset::new(3);
        generate(&mut ds, &config).unwrap();
        assert_eq!(ds.keystreams(), 1);
        let reference = scalar_pool_reference(&config, 3);
        assert_eq!(ds.counts_at(1), reference.counts_at(1));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut ds = SingleByteDataset::new(2);
        assert!(generate(&mut ds, &GenerationConfig::with_keys(0)).is_err());
    }

    #[test]
    fn pre_set_cancel_flag_aborts_before_any_work() {
        let cancel = AtomicBool::new(true);
        for workers in [1, 4] {
            let mut ds = SingleByteDataset::new(4);
            let config = GenerationConfig::with_keys(1_000_000).workers(workers);
            assert_eq!(
                generate_with_cancel(&mut ds, &config, Some(&cancel)),
                Err(DatasetError::Cancelled),
                "{workers}-worker run ignored the cancellation flag"
            );
        }
    }

    #[test]
    fn mid_run_cancellation_leaves_multi_thread_collector_untouched() {
        let cancel = AtomicBool::new(false);
        let mut ds = SingleByteDataset::new(4);
        let config = GenerationConfig::with_keys(2_000_000).workers(2);
        // Raise the flag from a progress-free side channel: a short timer
        // thread. The pool must notice it between batches and bail without
        // merging partials.
        let result = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                cancel.store(true, Ordering::Relaxed);
            });
            generate_with_cancel(&mut ds, &config, Some(&cancel))
        });
        assert_eq!(result, Err(DatasetError::Cancelled));
        assert_eq!(ds.keystreams(), 0, "partials must not be merged");
    }

    #[test]
    fn absent_flag_matches_plain_generate() {
        let config = GenerationConfig::with_keys(300).workers(2).seed(5);
        let mut plain = SingleByteDataset::new(4);
        let mut with_flag = SingleByteDataset::new(4);
        generate(&mut plain, &config).unwrap();
        let never = AtomicBool::new(false);
        generate_with_cancel(&mut with_flag, &config, Some(&never)).unwrap();
        for r in 1..=4 {
            assert_eq!(plain.counts_at(r), with_flag.counts_at(r));
        }
    }
}
