//! The keystream-generation worker pool.
//!
//! Stands in for the paper's distributed setup (roughly 80 desktop machines
//! plus three servers driven by Python): each worker thread owns a private
//! collector and a deterministic key generator, generates its share of
//! keystreams, and the per-worker collectors are merged at the end. Because
//! workers never share mutable state during generation, the pool scales
//! linearly with cores and the result is identical to a single-threaded run
//! over the union of the per-worker key sequences.
//!
//! Inside each worker the RC4 work runs through the batched multi-key engine
//! ([`rc4_accel::AutoBatch`]): keys are drawn from the deterministic stream
//! in engine-sized groups, the engine steps all of their KSA/PRGA lanes at
//! once, and the finished keystreams are counted in draw order. Per-key
//! streams are independent and counters additive, so the collector ends up
//! cell-for-cell identical to the historical one-key-at-a-time loop (pinned
//! by this module's tests).
//!
//! Long runs can be aborted cooperatively: [`generate_with_cancel`] takes an
//! [`AtomicBool`] that every worker polls between key batches, so an
//! experiment driver (e.g. `rc4-attacks`' `ExperimentContext`) can stop a
//! multi-minute generation within milliseconds of the flag being raised.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::thread;

use crate::{
    dataset::{DatasetError, GenerationConfig, KeystreamCollector},
    keygen::KeyGenerator,
};

/// How many keystreams a worker generates between cancellation-flag polls.
/// Small enough to abort within milliseconds, large enough that the relaxed
/// atomic load is invisible next to the RC4 work per key. Shared with the
/// store-driven generation loop ([`crate::storable::record_keys_batched`]).
pub const CANCEL_POLL_INTERVAL: u64 = 512;

/// Generates `config.keys` keystreams and accumulates them into `collector`.
///
/// The keys are split evenly across `config.workers` threads; worker `w`
/// derives its keys from `(config.seed, w)`, so the generated set of keys —
/// and therefore the resulting statistics — depend only on the configuration,
/// not on scheduling.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for invalid configurations and
/// propagates [`DatasetError::ShapeMismatch`] if merging fails (which would
/// indicate a bug in the collector's `clone_empty`).
///
/// # Examples
///
/// ```
/// use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig, KeystreamCollector};
///
/// let mut ds = SingleByteDataset::new(4);
/// generate(&mut ds, &GenerationConfig::with_keys(1_000).workers(2)).unwrap();
/// assert_eq!(ds.keystreams(), 1_000);
/// ```
pub fn generate<C>(collector: &mut C, config: &GenerationConfig) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    generate_with_cancel(collector, config, None)
}

/// [`generate`] with a cooperative cancellation flag.
///
/// Workers poll `cancel` every [`CANCEL_POLL_INTERVAL`] keys. When the flag is
/// raised mid-run the pool stops promptly and returns
/// [`DatasetError::Cancelled`] **without** merging the partial per-worker
/// counts, leaving `collector` exactly as it was handed in (single-worker runs
/// accumulate in place and are instead left partially filled — on `Cancelled`,
/// discard the collector either way).
///
/// # Errors
///
/// Everything [`generate`] returns, plus [`DatasetError::Cancelled`] when the
/// flag was observed set before the run completed.
pub fn generate_with_cancel<C>(
    collector: &mut C,
    config: &GenerationConfig,
    cancel: Option<&AtomicBool>,
) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    config.validate()?;
    let needed = collector.required_len();
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));

    if cancelled() {
        return Err(DatasetError::Cancelled);
    }

    if config.workers == 1 {
        let mut gen = KeyGenerator::new(config.seed, 0, config.key_len);
        run_worker(collector, &mut gen, config.keys, needed, cancel);
        if cancelled() {
            return Err(DatasetError::Cancelled);
        }
        return Ok(());
    }

    let partials: Vec<C> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let mut local = collector.clone_empty();
            let keys = config.keys_for_worker(w as u64);
            let seed = config.seed;
            let key_len = config.key_len;
            handles.push(scope.spawn(move |_| {
                let mut gen = KeyGenerator::new(seed, w as u64, key_len);
                run_worker(&mut local, &mut gen, keys, needed, cancel);
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("statistics worker panicked"))
            .collect()
    })
    .expect("worker scope panicked");

    if cancelled() {
        return Err(DatasetError::Cancelled);
    }
    for partial in partials {
        collector.merge(partial)?;
    }
    Ok(())
}

/// Inner loop of one worker: generate `keys` keystreams of `needed` bytes
/// through the batched engine, polling `cancel` between batches.
///
/// Keys are drawn in exactly the order the historical scalar loop drew them
/// and counted in draw order, so the collector's cells are identical; only
/// the RC4 work in between is batched.
fn run_worker<C: KeystreamCollector>(
    collector: &mut C,
    gen: &mut KeyGenerator,
    keys: u64,
    needed: usize,
    cancel: Option<&AtomicBool>,
) {
    let key_len = gen.key_len();
    let mut sink = CollectorSink { collector, needed };
    crate::storable::walk_keys_batched(&mut sink, gen, key_len, keys, cancel);
}

/// Adapter running a collector's uniform-key walk through the shared batched
/// key-walk loop (`crate::storable::walk_keys_batched`), so the worker pool
/// and the store-driven generation share ONE batch-sizing / cancellation
/// cadence implementation.
struct CollectorSink<'a, C: KeystreamCollector> {
    collector: &'a mut C,
    needed: usize,
}

impl<C: KeystreamCollector> crate::storable::BatchSink for CollectorSink<'_, C> {
    fn needed(&self) -> usize {
        self.needed
    }

    fn prepare(&mut self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64 {
        gen.fill_key(key);
        0
    }

    fn record(&mut self, _meta: u64, ks: &[u8]) {
        self.collector.record_keystream(ks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pairs::PairDataset, single::SingleByteDataset};

    #[test]
    fn single_worker_generates_requested_keys() {
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, &GenerationConfig::with_keys(500)).unwrap();
        assert_eq!(ds.keystreams(), 500);
        // Each position saw exactly 500 samples.
        assert_eq!(ds.counts_at(1).iter().sum::<u64>(), 500);
    }

    #[test]
    fn multi_worker_key_count_is_exact() {
        let mut ds = SingleByteDataset::new(2);
        generate(&mut ds, &GenerationConfig::with_keys(1_003).workers(4)).unwrap();
        assert_eq!(ds.keystreams(), 1_003);
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let config = GenerationConfig::with_keys(400).workers(3).seed(99);
        let mut a = SingleByteDataset::new(8);
        let mut b = SingleByteDataset::new(8);
        generate(&mut a, &config).unwrap();
        generate(&mut b, &config).unwrap();
        for r in 1..=8 {
            assert_eq!(a.counts_at(r), b.counts_at(r));
        }
    }

    #[test]
    fn worker_count_does_not_change_totals() {
        // Different worker counts generate different key sets, but the number of
        // samples and overall normalization must match.
        let mut one = PairDataset::consecutive(3).unwrap();
        let mut four = one.clone_empty();
        generate(&mut one, &GenerationConfig::with_keys(600).workers(1)).unwrap();
        generate(&mut four, &GenerationConfig::with_keys(600).workers(4)).unwrap();
        assert_eq!(one.keystreams(), four.keystreams());
        assert_eq!(
            one.joint_counts(0).iter().sum::<u64>(),
            four.joint_counts(0).iter().sum::<u64>()
        );
    }

    /// Scalar reference for a worker pool run: the exact historical
    /// one-key-at-a-time loop over the same per-worker key streams.
    fn scalar_pool_reference(config: &GenerationConfig, positions: usize) -> SingleByteDataset {
        let mut ds = SingleByteDataset::new(positions);
        let mut key = vec![0u8; config.key_len];
        let mut ks = vec![0u8; positions];
        for w in 0..config.workers {
            let mut gen = KeyGenerator::new(config.seed, w as u64, config.key_len);
            for _ in 0..config.keys_for_worker(w as u64) {
                gen.fill_key(&mut key);
                let mut prga = rc4::Prga::new(&key).expect("valid key length");
                prga.fill(&mut ks);
                ds.record_keystream(&ks);
            }
        }
        ds
    }

    #[test]
    fn batched_pool_is_cell_identical_to_scalar_loop() {
        // 555 keys over 2 workers: per-worker allotments (278/277) are not
        // multiples of any engine lane count, so both workers drain a
        // partial tail batch.
        let config = GenerationConfig::with_keys(555).workers(2).seed(77);
        let mut pooled = SingleByteDataset::new(5);
        generate(&mut pooled, &config).unwrap();
        let reference = scalar_pool_reference(&config, 5);
        assert_eq!(pooled.keystreams(), reference.keystreams());
        for r in 1..=5 {
            assert_eq!(pooled.counts_at(r), reference.counts_at(r));
        }
    }

    #[test]
    fn more_workers_than_keys() {
        // 3 keys across 8 workers: workers 0..3 generate one key each, the
        // rest none — the pool must neither hang nor over-count.
        let config = GenerationConfig::with_keys(3).workers(8).seed(5);
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, &config).unwrap();
        assert_eq!(ds.keystreams(), 3);
        let reference = scalar_pool_reference(&config, 4);
        for r in 1..=4 {
            assert_eq!(ds.counts_at(r), reference.counts_at(r));
        }
    }

    #[test]
    fn single_key_single_worker() {
        let config = GenerationConfig::with_keys(1).seed(9);
        let mut ds = SingleByteDataset::new(3);
        generate(&mut ds, &config).unwrap();
        assert_eq!(ds.keystreams(), 1);
        let reference = scalar_pool_reference(&config, 3);
        assert_eq!(ds.counts_at(1), reference.counts_at(1));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut ds = SingleByteDataset::new(2);
        assert!(generate(&mut ds, &GenerationConfig::with_keys(0)).is_err());
    }

    #[test]
    fn pre_set_cancel_flag_aborts_before_any_work() {
        let cancel = AtomicBool::new(true);
        for workers in [1, 4] {
            let mut ds = SingleByteDataset::new(4);
            let config = GenerationConfig::with_keys(1_000_000).workers(workers);
            assert_eq!(
                generate_with_cancel(&mut ds, &config, Some(&cancel)),
                Err(DatasetError::Cancelled),
                "{workers}-worker run ignored the cancellation flag"
            );
        }
    }

    #[test]
    fn absent_flag_matches_plain_generate() {
        let config = GenerationConfig::with_keys(300).workers(2).seed(5);
        let mut plain = SingleByteDataset::new(4);
        let mut with_flag = SingleByteDataset::new(4);
        generate(&mut plain, &config).unwrap();
        let never = AtomicBool::new(false);
        generate_with_cancel(&mut with_flag, &config, Some(&never)).unwrap();
        for r in 1..=4 {
            assert_eq!(plain.counts_at(r), with_flag.counts_at(r));
        }
    }
}
