//! Keystream statistics generation — the reproduction of Section 3.2.
//!
//! The paper's bias hunt rests on enormous empirical datasets: counts of how
//! often each keystream value (or value pair) occurs at each position, over
//! `2^44`–`2^47` random 128-bit keys, generated on a cluster of ~80 machines.
//! This crate rebuilds that machinery as a library:
//!
//! * [`single::SingleByteDataset`] — `Pr[Z_r = x]` for the initial positions
//!   (the paper's aggregated single-byte statistics, Fig. 6).
//! * [`pairs::PairDataset`] — `Pr[Z_a = x ∧ Z_b = y]` over a configurable list
//!   of position pairs. Constructors are provided for the paper's two main
//!   datasets: `consec512` (consecutive pairs up to position 512) and
//!   `first16` (byte 1–16 against later bytes).
//! * [`longterm::LongTermDataset`] — digraph statistics keyed by the PRGA
//!   counter `i` after discarding the initial keystream, used for the
//!   Fluhrer–McGrew and `w·256`-aligned long-term biases.
//! * [`tsc::PerTscDataset`] — keystream statistics conditioned on the public
//!   TKIP sequence-counter bytes, the input to the Paterson-style per-TSC
//!   plaintext likelihoods of Section 5.
//! * [`worker`] — the generation pool standing in for the paper's
//!   distributed setup, running on the shared execution layer (`rc4-exec`);
//!   each logical stream derives its RC4 keys deterministically from a
//!   per-stream seed ([`keygen`]), so runs are reproducible and cell-identical
//!   for ANY thread budget. Inside a
//!   worker the RC4 hot loop runs through the batched multi-key engine
//!   (`rc4_accel::AutoBatch`, AVX-512 gather/scatter where the CPU has it),
//!   stepping 8–16 keystreams per loop iteration while keeping every dataset
//!   byte-identical to the scalar path.
//! * [`counters`] — the 16-bit batched counter layout the paper uses to reduce
//!   cache misses, kept as a separately testable component so the
//!   `counter_layout` bench can quantify the optimization.
//! * [`streaming`] — in-place accumulating count and vote tables for the
//!   streaming ingestion mode, where ciphertext batches arrive continuously
//!   and the attacks re-score the accumulated table online.
//!
//! Datasets expose their raw counts (for the hypothesis tests in
//! `stat-tests`), empirical probability estimates (for the likelihood engines
//! in `plaintext-recovery`), and serde-based persistence so expensive runs can
//! be stored and re-analysed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod dataset;
pub mod keygen;
pub mod longterm;
pub mod pairs;
pub mod single;
pub mod storable;
pub mod streaming;
pub mod tsc;
pub mod worker;

pub use dataset::{DatasetError, GenerationConfig, KeystreamCollector};
pub use keygen::{splitmix64, KeyGenerator};
pub use storable::{
    generate_storable_with_exec, record_keys_batched, StorableDataset, PARALLEL_CLONE_MAX_CELLS,
};

/// Number of possible byte values; the alphabet size of every distribution here.
pub const NUM_VALUES: usize = 256;

/// Number of possible byte-pair values.
pub const NUM_PAIRS: usize = 256 * 256;

#[cfg(test)]
mod tests {
    #[test]
    fn constants_are_consistent() {
        assert_eq!(super::NUM_PAIRS, super::NUM_VALUES * super::NUM_VALUES);
    }
}
