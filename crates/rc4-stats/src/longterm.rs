//! Long-term keystream statistics: digraph counts keyed by the PRGA counter `i`.
//!
//! Section 3.4 of the paper searches for biases that persist through the whole
//! keystream. Its dataset drops the initial 1023 bytes of every keystream and
//! then records, for each position modulo 256, the joint distribution of
//! consecutive bytes — enough to re-detect all Fluhrer–McGrew biases — plus the
//! `256`-aligned pairs `(Z_{256w}, Z_{256w+2})` where the Sen Gupta `(0,0)` and
//! the paper's new `(128,0)` biases live.

use serde::{Deserialize, Serialize};

use crate::{
    dataset::{DatasetError, KeystreamCollector},
    storable::StorableDataset,
    NUM_PAIRS, NUM_VALUES,
};

/// Long-term digraph statistics.
///
/// `digraph_counts[i][x * 256 + y]` counts occurrences of the consecutive pair
/// `(Z_r, Z_{r+1}) = (x, y)` at positions where the PRGA counter before
/// outputting `Z_r` satisfies `i = r mod 256`. `aligned_counts[x * 256 + y]`
/// counts the pairs `(Z_{256w}, Z_{256w+2})`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongTermDataset {
    /// Number of initial keystream bytes dropped per key (paper: 1023).
    drop: usize,
    /// Number of keystream bytes consumed per key after the drop.
    block_len: usize,
    keystreams: u64,
    /// Total number of digraphs recorded (all `i` values together).
    digraphs: u64,
    digraph_counts: Vec<u64>,
    aligned_counts: Vec<u64>,
    aligned_samples: u64,
}

impl LongTermDataset {
    /// Default number of dropped initial bytes, matching the paper (`w >= 4` ⇒ 1023 bytes).
    pub const DEFAULT_DROP: usize = 1023;

    /// Creates an empty long-term dataset.
    ///
    /// Every recorded keystream must provide `drop + block_len` bytes; the
    /// first `drop` are discarded, the remaining `block_len` contribute
    /// digraph statistics.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `block_len < 2`.
    pub fn new(drop: usize, block_len: usize) -> Result<Self, DatasetError> {
        if block_len < 2 {
            return Err(DatasetError::InvalidConfig(
                "block_len must be at least 2 to form a digraph".into(),
            ));
        }
        Ok(Self {
            drop,
            block_len,
            keystreams: 0,
            digraphs: 0,
            digraph_counts: vec![0u64; NUM_VALUES * NUM_PAIRS],
            aligned_counts: vec![0u64; NUM_PAIRS],
            aligned_samples: 0,
        })
    }

    /// Creates the paper-shaped dataset: drop 1023 bytes, then consume `block_len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `block_len < 2`.
    pub fn paper_shape(block_len: usize) -> Result<Self, DatasetError> {
        Self::new(Self::DEFAULT_DROP, block_len)
    }

    /// Number of dropped initial bytes.
    pub fn drop_len(&self) -> usize {
        self.drop
    }

    /// Number of keystream bytes consumed per key after the drop.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Raw count of digraph `(x, y)` at PRGA counter `i`.
    pub fn digraph_count(&self, i: u8, x: u8, y: u8) -> u64 {
        self.digraph_counts[i as usize * NUM_PAIRS + x as usize * NUM_VALUES + y as usize]
    }

    /// Number of digraph samples recorded at PRGA counter `i`.
    pub fn digraph_samples(&self, i: u8) -> u64 {
        self.digraph_counts[i as usize * NUM_PAIRS..(i as usize + 1) * NUM_PAIRS]
            .iter()
            .sum()
    }

    /// Empirical probability of digraph `(x, y)` at PRGA counter `i`.
    pub fn digraph_probability(&self, i: u8, x: u8, y: u8) -> f64 {
        let n = self.digraph_samples(i);
        if n == 0 {
            return 0.0;
        }
        self.digraph_count(i, x, y) as f64 / n as f64
    }

    /// The joint count table (65536 entries) for PRGA counter `i`.
    pub fn digraph_counts_at(&self, i: u8) -> &[u64] {
        &self.digraph_counts[i as usize * NUM_PAIRS..(i as usize + 1) * NUM_PAIRS]
    }

    /// Raw count of the 256-aligned pair `(Z_{256w}, Z_{256w+2}) = (x, y)`.
    pub fn aligned_count(&self, x: u8, y: u8) -> u64 {
        self.aligned_counts[x as usize * NUM_VALUES + y as usize]
    }

    /// Number of 256-aligned pair samples recorded.
    pub fn aligned_samples(&self) -> u64 {
        self.aligned_samples
    }

    /// Empirical probability of the 256-aligned pair `(x, y)`.
    pub fn aligned_probability(&self, x: u8, y: u8) -> f64 {
        if self.aligned_samples == 0 {
            return 0.0;
        }
        self.aligned_count(x, y) as f64 / self.aligned_samples as f64
    }

    /// Total number of digraphs recorded across all counter values.
    pub fn total_digraphs(&self) -> u64 {
        self.digraphs
    }

    /// Serializes the dataset to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        serde_json::to_string(self).map_err(|e| DatasetError::Serialization(e.to_string()))
    }

    /// Restores a dataset from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if decoding fails.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        serde_json::from_str(json).map_err(|e| DatasetError::Serialization(e.to_string()))
    }
}

impl KeystreamCollector for LongTermDataset {
    fn required_len(&self) -> usize {
        self.drop + self.block_len
    }

    fn record_keystream(&mut self, keystream: &[u8]) {
        debug_assert!(keystream.len() >= self.required_len());
        let body = &keystream[self.drop..self.drop + self.block_len];
        // The PRGA counter i equals the 1-based keystream position modulo 256.
        // After dropping `drop` bytes, body[idx] is keystream position drop + idx + 1.
        for idx in 0..body.len() - 1 {
            let position = self.drop + idx + 1;
            let i = (position % 256) as u8;
            let x = body[idx] as usize;
            let y = body[idx + 1] as usize;
            self.digraph_counts[i as usize * NUM_PAIRS + x * NUM_VALUES + y] += 1;
            self.digraphs += 1;

            // 256-aligned pair (Z_{256w}, Z_{256w+2}): position is a multiple of 256
            // and we need the byte two positions later.
            if position % 256 == 0 && idx + 2 < body.len() {
                let y2 = body[idx + 2] as usize;
                self.aligned_counts[x * NUM_VALUES + y2] += 1;
                self.aligned_samples += 1;
            }
        }
        self.keystreams += 1;
    }

    fn clone_empty(&self) -> Self {
        Self::new(self.drop, self.block_len).expect("shape already validated")
    }

    fn merge(&mut self, other: Self) -> Result<(), DatasetError> {
        if other.drop != self.drop || other.block_len != self.block_len {
            return Err(DatasetError::ShapeMismatch(
                "long-term datasets have different drop/block configuration".into(),
            ));
        }
        for (a, b) in self.digraph_counts.iter_mut().zip(other.digraph_counts) {
            *a += b;
        }
        for (a, b) in self.aligned_counts.iter_mut().zip(other.aligned_counts) {
            *a += b;
        }
        self.keystreams += other.keystreams;
        self.digraphs += other.digraphs;
        self.aligned_samples += other.aligned_samples;
        Ok(())
    }

    fn keystreams(&self) -> u64 {
        self.keystreams
    }
}

impl StorableDataset for LongTermDataset {
    fn kind() -> &'static str {
        "longterm"
    }

    fn shape_params(&self) -> Vec<u64> {
        vec![self.drop as u64, self.block_len as u64]
    }

    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError> {
        let [drop, block_len] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "long-term shape needs 2 parameters, got {}",
                params.len()
            )));
        };
        Self::new(*drop as usize, *block_len as usize)
    }

    fn cell_count_for_shape(params: &[u64]) -> Result<u64, DatasetError> {
        let [_drop, block_len] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "long-term shape needs 2 parameters, got {}",
                params.len()
            )));
        };
        if *block_len < 2 {
            return Err(DatasetError::InvalidConfig(
                "block_len must be at least 2 to form a digraph".into(),
            ));
        }
        // Digraph table + aligned table + the two derived totals.
        Ok((NUM_VALUES * NUM_PAIRS + NUM_PAIRS + 2) as u64)
    }

    /// Cells are the digraph table, the aligned table, and the two derived
    /// totals (digraph and aligned sample counts) as single-cell slices, so
    /// the whole state survives a store round-trip.
    fn cell_slices(&self) -> Vec<&[u64]> {
        vec![
            &self.digraph_counts,
            &self.aligned_counts,
            core::slice::from_ref(&self.digraphs),
            core::slice::from_ref(&self.aligned_samples),
        ]
    }

    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]> {
        let Self {
            digraph_counts,
            aligned_counts,
            digraphs,
            aligned_samples,
            ..
        } = self;
        vec![
            digraph_counts.as_mut_slice(),
            aligned_counts.as_mut_slice(),
            core::slice::from_mut(digraphs),
            core::slice::from_mut(aligned_samples),
        ]
    }

    fn recorded_keystreams(&self) -> u64 {
        self.keystreams
    }

    fn set_recorded_keystreams(&mut self, keystreams: u64) {
        self.keystreams = keystreams;
    }

    fn required_keystream_len(&self) -> usize {
        self.drop + self.block_len
    }

    fn record_stream(&mut self, _meta: u64, ks: &[u8]) {
        self.record_keystream(ks);
    }

    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError> {
        self.merge(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(LongTermDataset::new(0, 1).is_err());
        assert!(LongTermDataset::new(0, 2).is_ok());
        let ds = LongTermDataset::paper_shape(512).unwrap();
        assert_eq!(ds.drop_len(), 1023);
        assert_eq!(ds.block_len(), 512);
        assert_eq!(ds.required_len(), 1023 + 512);
    }

    #[test]
    fn digraph_counting_positions() {
        // drop = 0, block = 4: positions 1,2,3 form digraphs with i = 1,2,3.
        let mut ds = LongTermDataset::new(0, 4).unwrap();
        ds.record_keystream(&[10, 20, 30, 40]);
        assert_eq!(ds.digraph_count(1, 10, 20), 1);
        assert_eq!(ds.digraph_count(2, 20, 30), 1);
        assert_eq!(ds.digraph_count(3, 30, 40), 1);
        assert_eq!(ds.total_digraphs(), 3);
        assert_eq!(ds.keystreams(), 1);
    }

    #[test]
    fn aligned_pairs_recorded_at_multiples_of_256() {
        // Use drop = 254 so that body[1] is position 256 (a multiple of 256).
        let mut ds = LongTermDataset::new(254, 8).unwrap();
        let mut ks = vec![0u8; 254 + 8];
        // positions 255..262 hold 1..8
        for (i, b) in ks[254..].iter_mut().enumerate() {
            *b = (i + 1) as u8;
        }
        ds.record_keystream(&ks);
        // Position 256 is body[1] (=2), position 258 is body[3] (=4).
        assert_eq!(ds.aligned_count(2, 4), 1);
        assert_eq!(ds.aligned_samples(), 1);
    }

    #[test]
    fn probabilities_are_normalized() {
        let mut ds = LongTermDataset::new(0, 16).unwrap();
        for i in 0u32..50 {
            let ks = rc4::keystream(&i.to_le_bytes(), 16).unwrap();
            ds.record_keystream(&ks);
        }
        let n = ds.digraph_samples(3);
        assert_eq!(n, 50);
        let mut sum = 0.0;
        for x in 0..=255u8 {
            for y in 0..=255u8 {
                sum += ds.digraph_probability(3, x, y);
            }
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_serialization() {
        let mut a = LongTermDataset::new(0, 4).unwrap();
        let mut b = a.clone_empty();
        a.record_keystream(&[1, 2, 3, 4]);
        b.record_keystream(&[1, 2, 9, 9]);
        a.merge(b).unwrap();
        assert_eq!(a.digraph_count(1, 1, 2), 2);
        assert_eq!(a.keystreams(), 2);

        let json = a.to_json().unwrap();
        let back = LongTermDataset::from_json(&json).unwrap();
        assert_eq!(back.digraph_count(1, 1, 2), 2);

        let mismatched = LongTermDataset::new(0, 8).unwrap();
        assert!(a.merge(mismatched).is_err());
    }
}
