//! Integration test for the `repro campaign` subcommands: the lease-based
//! fleet coordinator's acceptance scenario.
//!
//! The headline contract: a campaign split over several worker processes —
//! including one that *crashes mid-lease* (deterministic `--fail-first-after-keys`
//! injection) and has its lease expired, re-granted and resumed by a
//! replacement — merges into a table byte-identical to one uninterrupted
//! single-process `repro dataset generate` of the same configuration.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("repro-campaign-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(p: &Path) -> String {
    p.to_str().expect("temp paths are UTF-8").to_string()
}

/// The acceptance scenario from the issue: 4 leases, 2 worker processes, the
/// first worker killed mid-lease by fault injection; the campaign recovers
/// (expire → re-grant → resume from the crashed worker's checkpoint) and the
/// merged table is byte-identical to the single-process run.
#[test]
fn crashed_worker_is_re_leased_and_the_merge_is_byte_identical() {
    let dir = scratch("crash");
    let single = dir.join("single.ds");
    let camp = dir.join("camp");
    let merged = dir.join("merged.ds");

    // The uninterrupted single-process reference table.
    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &path_str(&single),
        "--kind",
        "single",
        "--positions",
        "8",
        "--keys",
        "4000",
        "--workers",
        "8",
        "--seed",
        "42",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));

    let plan = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "single",
        "--shape",
        "8",
        "--leases",
        "4",
        "--keys",
        "4000",
        "--workers",
        "8",
        "--seed",
        "42",
    ]);
    assert!(plan.status.success(), "{}", stderr(&plan));
    assert!(camp.join("campaign.json").is_file());

    // Run with 2 worker processes; the first checkpoints 150 keys of its
    // lease and then exits abnormally without reporting completion.
    let run = repro(&[
        "campaign",
        "run",
        "--dir",
        &path_str(&camp),
        "--out",
        &path_str(&merged),
        "--procs",
        "2",
        "--checkpoint-keys",
        "100",
        "--fail-first-after-keys",
        "150",
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let log = stderr(&run);
    assert!(
        log.contains("died; re-leasing"),
        "the injected crash must surface as an expiry:\n{log}"
    );
    assert!(
        log.contains("attempt 2"),
        "the expired lease must be re-granted:\n{log}"
    );

    let reference = std::fs::read(&single).unwrap();
    let campaign = std::fs::read(&merged).unwrap();
    assert_eq!(
        reference, campaign,
        "campaign merge must be byte-identical to the single-process table"
    );

    // status reflects the finished campaign, including the crash's attempt
    // count, and survives the coordinator being long gone.
    let status = repro(&["campaign", "status", "--dir", &path_str(&camp)]);
    assert!(status.status.success(), "{}", stderr(&status));
    let text = stdout(&status);
    assert!(text.contains("complete 4"), "{text}");
    assert!(text.contains("ready to merge"), "{text}");
    assert!(text.contains("attempts 2"), "{text}");

    // Re-running the finished campaign only re-merges — still byte-identical.
    let rerun = repro(&[
        "campaign",
        "run",
        "--dir",
        &path_str(&camp),
        "--out",
        &path_str(&merged),
        "--procs",
        "2",
    ]);
    assert!(rerun.status.success(), "{}", stderr(&rerun));
    assert_eq!(reference, std::fs::read(&merged).unwrap());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean multi-process campaign (no crash) over a pairs dataset, merged
/// through the tiered out-of-core path, against the single-process
/// reference; plus the `--compress` variant holding identical cells.
#[test]
fn clean_campaign_matches_single_process_across_kinds() {
    let dir = scratch("clean");
    let single = dir.join("single.ds");
    let camp = dir.join("camp");
    let merged = dir.join("merged.ds");

    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &path_str(&single),
        "--kind",
        "pairs",
        "--consecutive",
        "2",
        "--keys",
        "900",
        "--workers",
        "6",
        "--seed",
        "7",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));

    // Pairs shape params are the flattened (a, b) pairs: --consecutive 2
    // expands to pairs 1:2 and 2:3, i.e. shape 1,2,2,3.
    let plan = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "pairs",
        "--shape",
        "1,2,2,3",
        "--leases",
        "3",
        "--keys",
        "900",
        "--workers",
        "6",
        "--seed",
        "7",
    ]);
    assert!(plan.status.success(), "{}", stderr(&plan));

    let run = repro(&[
        "campaign",
        "run",
        "--dir",
        &path_str(&camp),
        "--out",
        &path_str(&merged),
        "--procs",
        "3",
        "--fan-in",
        "2",
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    assert_eq!(
        std::fs::read(&single).unwrap(),
        std::fs::read(&merged).unwrap(),
        "tiered campaign merge must be byte-identical to the single-process table"
    );

    // The compressed merged table is smaller on disk but `dataset info`
    // verifies it holds the same complete dataset (CRC + cell count).
    let compressed = dir.join("merged-v2.ds");
    let run = repro(&[
        "campaign",
        "run",
        "--dir",
        &path_str(&camp),
        "--out",
        &path_str(&compressed),
        "--compress",
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let info = repro(&["dataset", "info", &path_str(&compressed)]);
    assert!(info.status.success(), "{}", stderr(&info));
    let text = stdout(&info);
    assert!(text.contains("complete"), "{text}");
    assert!(text.contains("delta-varint"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Planning is validated up front: bad shapes, over-splitting, and planning
/// over an existing manifest are usage errors, not worker-time failures.
#[test]
fn plan_rejects_bad_inputs_up_front() {
    let dir = scratch("plan-errors");
    let camp = dir.join("camp");

    // More leases than workers cannot tile the range.
    let over = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "single",
        "--shape",
        "8",
        "--leases",
        "9",
        "--keys",
        "100",
        "--workers",
        "4",
    ]);
    assert_eq!(over.status.code(), Some(2), "{}", stderr(&over));

    // A shape the dataset kind rejects fails before any file is written.
    let bad_shape = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "pairs",
        "--shape",
        "1,1",
        "--leases",
        "1",
        "--keys",
        "100",
        "--workers",
        "4",
    ]);
    assert_eq!(bad_shape.status.code(), Some(2), "{}", stderr(&bad_shape));
    assert!(!camp.join("campaign.json").exists());

    // Planning twice refuses to clobber the manifest.
    let ok = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "single",
        "--shape",
        "8",
        "--leases",
        "2",
        "--keys",
        "100",
        "--workers",
        "4",
    ]);
    assert!(ok.status.success(), "{}", stderr(&ok));
    let again = repro(&[
        "campaign",
        "plan",
        "--dir",
        &path_str(&camp),
        "--kind",
        "single",
        "--shape",
        "8",
        "--leases",
        "2",
        "--keys",
        "100",
        "--workers",
        "4",
    ]);
    assert_eq!(again.status.code(), Some(1), "{}", stderr(&again));
    assert!(stderr(&again).contains("resume"), "{}", stderr(&again));

    let _ = std::fs::remove_dir_all(&dir);
}
