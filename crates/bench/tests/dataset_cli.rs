//! Integration test for the `repro dataset` subcommands and `--cache-dir`:
//! the acceptance roundtrip of the persistent dataset store.
//!
//! The headline scenario (also exercised by CI): a quick-scale per-TSC
//! dataset is generated to disk as a worker-0 shard, *stopped midway*,
//! resumed to completion, merged with a disjoint worker-1 shard, dropped into
//! a cache directory — and `repro run fig8 --cache-dir` then produces
//! byte-identical JSON to a fresh in-memory run of the equivalent combined
//! configuration, without regenerating anything.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-dataset-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(p: &Path) -> String {
    p.to_str().expect("temp paths are UTF-8").to_string()
}

/// The full acceptance roundtrip: generate → stop → resume → merge →
/// cache-served `repro run fig8` byte-identical to the fresh run.
#[test]
fn generate_stop_resume_merge_cache_roundtrip_is_byte_identical() {
    let dir = scratch("roundtrip");
    // fig8 with an empirical per-TSC1 model over 4096 keys. The dataset fig8
    // requests is then: kind per-tsc, positions payload_len + 1 + TRAILER_LEN
    // = 68, seed 0xF168 ^ 0xE = 0xF166, and the FIXED logical stream count
    // `rc4_attacks::experiments::DATASET_STREAMS` = 4 (the `--workers` flag
    // only sets the thread budget and must not change the dataset identity).
    let config_path = dir.join("fig8.json");
    std::fs::write(
        &config_path,
        r#"{"fig8": {"capture_counts":[256],"trials":1,"max_candidates":64,"payload_len":55,"model":{"kind":"empirical","keys":4096},"seed":61800}}"#,
    )
    .unwrap();
    let run_args = |extra: &[&str]| {
        let mut args = vec![
            "run",
            "fig8",
            "--config",
            config_path.to_str().unwrap(),
            "--workers",
            "2",
            "--json",
        ];
        args.extend_from_slice(extra);
        args.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };

    // Fresh, fully in-memory run: the ground truth.
    let fresh = repro(&run_args(&[]).iter().map(String::as_str).collect::<Vec<_>>());
    assert!(fresh.status.success(), "fresh run: {}", stderr(&fresh));
    let fresh_json = stdout(&fresh);

    // Shard for worker 0, stopped midway (deterministic stand-in for a
    // cancelled collection run) — the header must say "resumable".
    let shard0 = path_str(&dir.join("shard0.ds"));
    let gen0 = repro(&[
        "dataset",
        "generate",
        "--out",
        &shard0,
        "--kind",
        "per-tsc",
        "--positions",
        "68",
        "--keys",
        "4096",
        "--workers",
        "4",
        "--seed",
        "0xF166",
        "--worker-range",
        "0..1",
        "--checkpoint-keys",
        "256",
        "--stop-after-keys",
        "500",
    ]);
    assert!(gen0.status.success(), "gen0: {}", stderr(&gen0));
    assert!(stderr(&gen0).contains("stopped"), "gen0: {}", stderr(&gen0));
    let info0 = repro(&["dataset", "info", &shard0]);
    assert!(info0.status.success());
    assert!(stdout(&info0).contains("resumable"), "{}", stdout(&info0));

    // Resume it to completion.
    let res0 = repro(&["dataset", "resume", &shard0]);
    assert!(res0.status.success(), "resume: {}", stderr(&res0));
    let info0 = repro(&["dataset", "info", &shard0]);
    assert!(stdout(&info0).contains("complete"), "{}", stdout(&info0));

    // Disjoint second shard: the remaining worker streams 1..4.
    let shard1 = path_str(&dir.join("shard1.ds"));
    let gen1 = repro(&[
        "dataset",
        "generate",
        "--out",
        &shard1,
        "--kind",
        "per-tsc",
        "--positions",
        "68",
        "--keys",
        "4096",
        "--workers",
        "4",
        "--seed",
        "0xF166",
        "--worker-range",
        "1..4",
    ]);
    assert!(gen1.status.success(), "gen1: {}", stderr(&gen1));

    // Merge into the cache directory (any *.ds name is found by the scan).
    let cache = dir.join("cache");
    std::fs::create_dir_all(&cache).unwrap();
    let master = path_str(&cache.join("master.ds"));
    let merge = repro(&["dataset", "merge", "--out", &master, &shard0, &shard1]);
    assert!(merge.status.success(), "merge: {}", stderr(&merge));

    // Cached run: must hit (no generation) and match the fresh run byte for
    // byte.
    let cache_str = path_str(&cache);
    let cached_args = run_args(&["--cache-dir", &cache_str]);
    let cached = repro(&cached_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(cached.status.success(), "cached run: {}", stderr(&cached));
    assert!(
        stderr(&cached).contains("dataset cache hit (per-tsc)"),
        "expected a cache hit, got: {}",
        stderr(&cached)
    );
    assert_eq!(
        fresh_json,
        stdout(&cached),
        "cache-served run must be byte-identical to the fresh run"
    );

    // Worker-count invariance through the cache: a different thread budget
    // must serve the SAME dataset (cache identity excludes `--workers`) and
    // produce the same bytes.
    let mut one_worker_args = cached_args.clone();
    let w = one_worker_args
        .iter()
        .position(|a| a == "--workers")
        .expect("run args carry --workers");
    one_worker_args[w + 1] = "1".to_string();
    let one_worker = repro(
        &one_worker_args
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    assert!(one_worker.status.success(), "{}", stderr(&one_worker));
    assert!(
        stderr(&one_worker).contains("dataset cache hit (per-tsc)"),
        "--workers 1 run missed the cache: {}",
        stderr(&one_worker)
    );
    assert_eq!(
        fresh_json,
        stdout(&one_worker),
        "--workers must not change experiment output"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--workers 0` is rejected up front with a helpful message (exit 2), both
/// on `run` and on `dataset generate`.
#[test]
fn zero_workers_is_rejected_with_exit_2() {
    let run = repro(&["run", "headline", "--workers", "0"]);
    assert_eq!(run.status.code(), Some(2));
    assert!(
        stderr(&run).contains("--workers must be at least 1"),
        "{}",
        stderr(&run)
    );

    let dir = scratch("workers0");
    let out = path_str(&dir.join("x.ds"));
    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &out,
        "--kind",
        "single",
        "--positions",
        "4",
        "--workers",
        "0",
    ]);
    assert_eq!(gen.status.code(), Some(2));
    assert!(
        stderr(&gen).contains("--workers must be at least 1"),
        "{}",
        stderr(&gen)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dataset subcommands validate their inputs: unknown kinds, missing
/// shape flags, bad ranges and missing files all exit 2/1 with a message.
#[test]
fn dataset_subcommand_error_contract() {
    // Unknown subcommand / missing subcommand.
    let unknown = repro(&["dataset", "explode"]);
    assert_eq!(unknown.status.code(), Some(2));
    let bare = repro(&["dataset"]);
    assert_eq!(bare.status.code(), Some(2));
    // --help exits 0 with usage on stdout.
    let help = repro(&["dataset", "--help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("generate"));

    // Missing shape flag.
    let dir = scratch("errors");
    let out = path_str(&dir.join("x.ds"));
    let missing = repro(&["dataset", "generate", "--out", &out, "--kind", "single"]);
    assert_eq!(missing.status.code(), Some(2));
    assert!(
        stderr(&missing).contains("--positions"),
        "{}",
        stderr(&missing)
    );

    // Merging fewer than two shards.
    let short = repro(&["dataset", "merge", "--out", &out, "nonexistent.ds"]);
    assert_eq!(short.status.code(), Some(2));

    // Info on a missing file is a runtime error (exit 1) naming the path.
    let missing_file = path_str(&dir.join("absent.ds"));
    let info = repro(&["dataset", "info", &missing_file]);
    assert_eq!(info.status.code(), Some(1));
    assert!(stderr(&info).contains("absent.ds"), "{}", stderr(&info));

    // Info on a corrupt file reports a typed corruption message.
    let garbage = dir.join("garbage.ds");
    std::fs::write(&garbage, b"RC4DSET\0garbage beyond the magic").unwrap();
    let info = repro(&["dataset", "info", &path_str(&garbage)]);
    assert_eq!(info.status.code(), Some(1));
    assert!(
        stderr(&info).contains("corrupt") || stderr(&info).contains("truncated"),
        "{}",
        stderr(&info)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--checkpoint-keys` larger than the shard's key range used to silently
/// produce zero intermediate checkpoints; now it is clamped with a warning,
/// and the run still completes (with correct data — pinned by the store's
/// unit tests).
#[test]
fn oversized_checkpoint_keys_warns_and_clamps() {
    let dir = scratch("clampwarn");
    let out = path_str(&dir.join("clamped.ds"));
    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &out,
        "--kind",
        "single",
        "--positions",
        "4",
        "--keys",
        "200",
        "--checkpoint-keys",
        "1000000",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    let err = stderr(&gen);
    assert!(
        err.contains("--checkpoint-keys 1000000 exceeds the shard's 200 keys"),
        "missing clamp warning in: {err}"
    );
    assert!(err.contains("clamping"), "missing clamp wording in: {err}");
    let info = repro(&["dataset", "info", &out]);
    assert!(stdout(&info).contains("complete"), "{}", stdout(&info));

    // A sane interval stays warning-free.
    let quiet = path_str(&dir.join("quiet.ds"));
    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &quiet,
        "--kind",
        "single",
        "--positions",
        "4",
        "--keys",
        "200",
        "--checkpoint-keys",
        "100",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    assert!(
        !stderr(&gen).contains("warning"),
        "unexpected warning: {}",
        stderr(&gen)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `dataset info --json` emits the parsed header as JSON.
#[test]
fn dataset_info_json_is_parseable() {
    let dir = scratch("infojson");
    let out = path_str(&dir.join("tiny.ds"));
    let gen = repro(&[
        "dataset",
        "generate",
        "--out",
        &out,
        "--kind",
        "pairs",
        "--consecutive",
        "2",
        "--keys",
        "50",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    let info = repro(&["dataset", "info", &out, "--json"]);
    assert!(info.status.success(), "{}", stderr(&info));
    let header: serde::Value = serde_json::from_str(&stdout(&info)).expect("info --json parses");
    let kind = header.field("kind").unwrap();
    assert_eq!(*kind, serde::Value::Str("pairs".into()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--compress` writes a v2 delta+varint shard that is smaller on disk yet
/// holds the identical dataset, and the streaming/tiered merge flags produce
/// output byte-identical to the default in-memory merge.
#[test]
fn compressed_shards_and_streaming_merge_match_raw() {
    let dir = scratch("compress");
    let common = |out: &str, range: &str, extra: &[&str]| {
        let mut args = vec![
            "dataset",
            "generate",
            "--out",
            out,
            "--kind",
            "single",
            "--positions",
            "8",
            "--keys",
            "600",
            "--workers",
            "2",
            "--seed",
            "9",
            "--worker-range",
            range,
        ];
        args.extend_from_slice(extra);
        repro(&args)
    };
    let shard0 = path_str(&dir.join("shard0.ds"));
    let shard1 = path_str(&dir.join("shard1.ds"));
    let shard0_v2 = path_str(&dir.join("shard0-v2.ds"));
    assert!(common(&shard0, "0..1", &[]).status.success());
    assert!(common(&shard1, "1..2", &[]).status.success());
    assert!(common(&shard0_v2, "0..1", &["--compress"]).status.success());

    // The compressed twin is smaller and info reports both as the same
    // complete dataset (the full read verifies CRC and cell count).
    let raw_len = std::fs::metadata(&shard0).unwrap().len();
    let v2_len = std::fs::metadata(&shard0_v2).unwrap().len();
    assert!(
        v2_len < raw_len,
        "compressed shard ({v2_len} B) should be smaller than raw ({raw_len} B)"
    );
    let info = repro(&["dataset", "info", &shard0_v2]);
    assert!(info.status.success(), "{}", stderr(&info));
    assert!(stdout(&info).contains("delta-varint"), "{}", stdout(&info));
    let info = repro(&["dataset", "info", &shard0]);
    assert!(stdout(&info).contains("raw"), "{}", stdout(&info));

    // In-memory, streaming and tiered merges agree byte for byte.
    let merged = path_str(&dir.join("merged.ds"));
    let merged_streaming = path_str(&dir.join("merged-streaming.ds"));
    let merged_tiered = path_str(&dir.join("merged-tiered.ds"));
    let m = repro(&["dataset", "merge", "--out", &merged, &shard0, &shard1]);
    assert!(m.status.success(), "{}", stderr(&m));
    let m = repro(&[
        "dataset",
        "merge",
        "--out",
        &merged_streaming,
        "--streaming",
        "--window-cells",
        "100",
        &shard0,
        &shard1,
    ]);
    assert!(m.status.success(), "{}", stderr(&m));
    let m = repro(&[
        "dataset",
        "merge",
        "--out",
        &merged_tiered,
        "--fan-in",
        "2",
        &shard0,
        &shard1,
    ]);
    assert!(m.status.success(), "{}", stderr(&m));
    let reference = std::fs::read(&merged).unwrap();
    assert_eq!(reference, std::fs::read(&merged_streaming).unwrap());
    assert_eq!(reference, std::fs::read(&merged_tiered).unwrap());

    // A compressed input merges like a raw one: same cells, same output.
    let merged_mixed = path_str(&dir.join("merged-mixed.ds"));
    let m = repro(&[
        "dataset",
        "merge",
        "--out",
        &merged_mixed,
        "--streaming",
        &shard0_v2,
        &shard1,
    ]);
    assert!(m.status.success(), "{}", stderr(&m));
    assert_eq!(reference, std::fs::read(&merged_mixed).unwrap());

    let _ = std::fs::remove_dir_all(&dir);
}
