//! Integration test for the `repro` binary: the CLI contract the CI workflow
//! and the determinism guarantees rely on.

use std::process::{Command, Output};

use rc4_attacks::{ExperimentReport, Registry};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

/// `repro list` prints every registered experiment with its summary.
#[test]
fn list_prints_the_registry() {
    let output = repro(&["list"]);
    assert!(output.status.success());
    let text = stdout(&output);
    let registry = Registry::with_defaults();
    assert!(registry.len() >= 13);
    for entry in registry.entries() {
        assert!(
            text.contains(entry.name()) && text.contains(entry.summary()),
            "list output is missing '{}'",
            entry.name()
        );
    }
}

/// `repro list --json` describes every experiment completely: name, summary,
/// aliases, and the scales it accepts — the machine-readable registry
/// contract serving clients rely on to validate submissions.
#[test]
fn list_json_carries_name_summary_aliases_and_scales() {
    let output = repro(&["list", "--json"]);
    assert!(output.status.success());
    let value: serde::Value = serde_json::from_str(&stdout(&output)).expect("list JSON parses");
    let serde::Value::Array(entries) = &value else {
        panic!("list --json must be a JSON array");
    };
    let registry = Registry::with_defaults();
    assert_eq!(entries.len(), registry.len(), "one entry per experiment");
    for (entry, registered) in entries.iter().zip(registry.entries()) {
        let field = |name: &str| match entry.field(name) {
            Ok(serde::Value::Str(s)) => s.clone(),
            other => panic!("entry field `{name}` should be a string, got {other:?}"),
        };
        assert_eq!(field("name"), registered.name());
        assert_eq!(field("summary"), registered.summary());
        let Ok(serde::Value::Array(aliases)) = entry.field("aliases") else {
            panic!("entry lacks an `aliases` array");
        };
        let alias_names: Vec<String> = aliases
            .iter()
            .map(|a| match a {
                serde::Value::Str(s) => s.clone(),
                other => panic!("alias should be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(alias_names, registered.aliases().to_vec());
        let Ok(serde::Value::Array(scales)) = entry.field("scales") else {
            panic!("entry lacks a `scales` array");
        };
        let scale_names: Vec<String> = scales
            .iter()
            .map(|s| match s {
                serde::Value::Str(s) => s.clone(),
                other => panic!("scale should be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(scale_names, vec!["quick", "laptop", "extended"]);
    }
    // At least one experiment actually advertises an alias, so the field is
    // exercised rather than vacuously empty everywhere.
    assert!(
        entries.iter().any(|e| matches!(
            e.field("aliases"),
            Ok(serde::Value::Array(a)) if !a.is_empty()
        )),
        "expected at least one aliased experiment"
    );
}

/// The serve-family subcommands are wired into the dispatcher: a client
/// command with no reachable server fails cleanly (exit 2, pointing at
/// `repro serve`), and `repro serve --help` documents the whole family.
#[test]
fn serve_family_dispatches_and_fails_cleanly_without_a_server() {
    let help = repro(&["serve", "--help"]);
    assert!(help.status.success());
    let text = stdout(&help);
    for cmd in [
        "serve", "submit", "jobs", "watch", "result", "cancel", "status", "shutdown",
    ] {
        assert!(text.contains(cmd), "serve help is missing '{cmd}'");
    }

    let output = repro(&["jobs", "--state-dir", "/nonexistent/reprod-state"]);
    assert!(!output.status.success());
    assert_eq!(output.status.code(), Some(2));
    assert!(
        stderr(&output).contains("repro serve"),
        "the error should point at starting a server, got: {}",
        stderr(&output)
    );
}

/// `repro run all --scale quick --json` emits a single parseable JSON array
/// with exactly one report per registered experiment, and two runs with the
/// same (default) seed are byte-identical.
#[test]
fn run_all_json_is_parseable_complete_and_deterministic() {
    let args = ["run", "all", "--scale", "quick", "--json"];
    let first = repro(&args);
    assert!(first.status.success(), "stderr: {}", stderr(&first));
    let text = stdout(&first);

    let reports: Vec<ExperimentReport> =
        serde_json::from_str(&text).expect("stdout is one JSON array of reports");
    let registry = Registry::with_defaults();
    assert_eq!(
        reports.len(),
        registry.len(),
        "expected one report per registered experiment"
    );
    for report in &reports {
        assert!(!report.rows.is_empty(), "{} report is empty", report.id);
    }

    let second = repro(&args);
    assert!(second.status.success());
    assert_eq!(
        text,
        stdout(&second),
        "same-seed runs must produce byte-identical --json output"
    );
}

/// A `--seed` override reaches the experiments: output differs from the
/// default-seed run but remains self-consistent.
#[test]
fn seed_flag_changes_and_pins_the_output() {
    let base = ["run", "headline", "--scale", "quick", "--json"];
    let seeded = [
        "run", "headline", "--scale", "quick", "--json", "--seed", "7",
    ];
    let default_out = stdout(&repro(&base));
    let seeded_a = stdout(&repro(&seeded));
    let seeded_b = stdout(&repro(&seeded));
    assert_eq!(seeded_a, seeded_b);
    assert_ne!(default_out, seeded_a);
}

/// Unknown experiment names exit non-zero and list every registered name —
/// sourced from the registry, never hardcoded.
#[test]
fn unknown_experiment_lists_registered_names_and_fails() {
    let output = repro(&["run", "fig99"]);
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    for name in Registry::with_defaults().names() {
        assert!(err.contains(name), "error message is missing '{name}'");
    }
}

/// Unknown scales exit non-zero and name the valid scales.
#[test]
fn unknown_scale_fails_with_the_valid_choices() {
    for args in [
        &["run", "headline", "--scale", "galactic"][..],
        &["headline", "galactic"][..],
    ] {
        let output = repro(args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
        let err = stderr(&output);
        assert!(err.contains("quick") && err.contains("laptop") && err.contains("extended"));
    }
}

/// The pre-redesign positional form keeps working for one experiment plus an
/// optional scale; longer positional lists are rejected with a pointer to
/// `run` instead of being guessed at.
#[test]
fn legacy_positional_form_still_runs() {
    let output = repro(&["headline", "quick"]);
    assert!(output.status.success());
    assert!(stdout(&output).contains("headline"));

    let ambiguous = repro(&["fig7", "fig8", "quick"]);
    assert_eq!(ambiguous.status.code(), Some(2));
    assert!(stderr(&ambiguous).contains("repro run"));
}

/// `--help` is not an error: usage goes to stdout with exit 0.
#[test]
fn help_exits_zero_with_usage_on_stdout() {
    let output = repro(&["--help"]);
    assert_eq!(output.status.code(), Some(0));
    assert!(stdout(&output).contains("usage: repro"));
}

/// `--config` entries keyed by an alias reach the canonical experiment, and
/// duplicate entries (via aliasing) are rejected.
#[test]
fn config_overrides_resolve_aliases() {
    use rc4_attacks::experiments::fig8::{Fig8Config, TkipTrafficModel};
    use serde::Serialize;

    let config = Fig8Config {
        capture_counts: vec![512],
        trials: 1,
        max_candidates: 128,
        payload_len: 55,
        model: TkipTrafficModel::Synthetic { relative_bias: 0.9 },
        seed: 99,
    };
    let dir = std::env::temp_dir();
    let path = dir.join("repro_cli_alias_config.json");
    std::fs::write(
        &path,
        format!(
            "{{\"fig9\": {}}}",
            serde_json::to_string(&config.to_value()).unwrap()
        ),
    )
    .unwrap();
    let output = repro(&["run", "fig8", "--json", "--config", path.to_str().unwrap()]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let reports: Vec<ExperimentReport> = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(reports.len(), 1);
    // The alias-keyed override must actually land: one sweep point (512
    // captures), not the quick preset's two.
    assert_eq!(reports[0].rows.len(), 1, "override was not applied");
    assert_eq!(reports[0].rows[0].cells[0], "512");

    let dup_path = dir.join("repro_cli_dup_config.json");
    std::fs::write(
        &dup_path,
        format!(
            "{{\"fig8\": {cfg}, \"fig9\": {cfg}}}",
            cfg = serde_json::to_string(&config.to_value()).unwrap()
        ),
    )
    .unwrap();
    let dup = repro(&["run", "fig8", "--config", dup_path.to_str().unwrap()]);
    assert_eq!(dup.status.code(), Some(2));
    assert!(stderr(&dup).contains("twice"));

    // An override for an experiment that is not part of the run is an error,
    // not a silent no-op.
    let unused = repro(&["run", "fig7", "--config", path.to_str().unwrap()]);
    assert_eq!(unused.status.code(), Some(2));
    assert!(stderr(&unused).contains("not being run"));
}

/// `repro bench --json` emits the BENCH_*.json schema (a `benches` array of
/// `{bench, ns_per_iter[, bytes_per_sec]}`) with every smoke workload
/// present, and the compare gate passes against its own numbers.
#[test]
fn bench_smoke_mode_contract() {
    // The fast-mode knob travels per child process (never via set_var: tests
    // run multi-threaded, and mutating this process's environment races the
    // spawns of sibling tests).
    let bench_fast = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .env("REPRO_BENCH_FAST", "1")
            .output()
            .expect("repro binary runs")
    };
    let output = bench_fast(&["bench", "--json"]);
    assert!(output.status.success(), "{}", stderr(&output));
    let report: serde::Value = serde_json::from_str(&stdout(&output)).expect("bench JSON parses");
    let serde::Value::Array(benches) = report.field("benches").expect("benches array").clone()
    else {
        panic!("`benches` is not an array");
    };
    let names: Vec<String> = benches
        .iter()
        .map(|b| match b.field("bench") {
            Ok(serde::Value::Str(name)) => name.clone(),
            other => panic!("bench entry without name: {other:?}"),
        })
        .collect();
    for expected in [
        "rc4_keystream/65536",
        "rc4_batch_keystream/16x4096",
        "rc4_batch_rekey/256x68",
        "dataset_generate/single_32768x64",
        "fig8_tkip_recovery/quick_sweep",
        "recovery_likelihood/fm_sparse_65536",
        "recovery_viterbi/base64_6x256",
        "streaming_ingest/absorb_rescore_65536",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
    for bench in &benches {
        match bench.field("ns_per_iter") {
            Ok(serde::Value::Float(ns)) => assert!(*ns > 0.0),
            Ok(serde::Value::UInt(ns)) => assert!(*ns > 0),
            other => panic!("ns_per_iter missing or non-numeric: {other:?}"),
        }
    }

    // Self-compare: the measured file gates itself (exit 0, markdown table).
    // The wide tolerance keeps this a test of the gate *mechanism* — in fast
    // mode under a fully loaded test machine, run-to-run noise alone can
    // exceed the default 25%.
    let dir = std::env::temp_dir();
    let bench_file = dir.join(format!("repro-bench-self-{}.json", std::process::id()));
    std::fs::write(&bench_file, stdout(&output)).unwrap();
    let gate = bench_fast(&[
        "bench",
        "--compare",
        bench_file.to_str().unwrap(),
        "--tolerance",
        "400",
    ]);
    assert!(gate.status.success(), "{}", stderr(&gate));
    let table = stdout(&gate);
    assert!(table.contains("vs committed trajectory"), "{table}");
    assert!(table.contains("| ok |"), "{table}");
    assert!(!table.contains("REGRESSED"), "{table}");

    // A tiny committed value must trip the gate with exit 1.
    std::fs::write(
        &bench_file,
        r#"{"benches": [{"bench": "rc4_keystream/65536", "ns_per_iter": 1.0}]}"#,
    )
    .unwrap();
    let fail = bench_fast(&["bench", "--compare", bench_file.to_str().unwrap()]);
    assert_eq!(fail.status.code(), Some(1), "{}", stderr(&fail));
    assert!(stderr(&fail).contains("perf regression gate failed"));
    assert!(stdout(&fail).contains("REGRESSED"));
    let _ = std::fs::remove_file(&bench_file);
}

/// Unknown bench flags exit 2 with usage.
#[test]
fn bench_rejects_unknown_flags() {
    let output = repro(&["bench", "--frobnicate"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("usage: repro bench"));
}

/// `repro run all --scale quick --json` is byte-identical between
/// `--workers 1` and `--workers 4`: the worker count is a pure thread
/// budget — logical RNG streams are pinned per trial / per dataset — so
/// parallelism can never change a reported number. (Extends the same-seed
/// determinism contract pinned above to worker-count invariance.)
#[test]
fn run_all_json_is_byte_identical_across_worker_counts() {
    let run = |workers: &str| {
        let output = repro(&[
            "run",
            "all",
            "--scale",
            "quick",
            "--json",
            "--workers",
            workers,
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        stdout(&output)
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(
        one, four,
        "--workers changed experiment output; parallelism must be result-neutral"
    );
}

/// `repro bench --compare latest` resolves the highest-numbered
/// `BENCH_pr<N>.json` in the current directory — numerically, so pr10
/// outranks pr9 — and errors cleanly when none exists.
#[test]
fn bench_compare_latest_resolves_numerically() {
    let dir = std::env::temp_dir().join(format!("repro-bench-latest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench_in = |cwd: &std::path::Path, args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .current_dir(cwd)
            .env("REPRO_BENCH_FAST", "1")
            .output()
            .expect("repro binary runs")
    };

    // No trajectory files at all: a clean exit-2 error, not a panic.
    let none = bench_in(&dir, &["bench", "--compare", "latest"]);
    assert_eq!(none.status.code(), Some(2), "{}", stderr(&none));
    assert!(stderr(&none).contains("no BENCH_pr"), "{}", stderr(&none));

    // pr9 would pass (huge committed numbers), pr10 must trip the gate
    // (tiny committed number) — so an exit-1 proves pr10 was picked over
    // pr9 despite "BENCH_pr9.json" sorting later lexicographically.
    std::fs::write(
        dir.join("BENCH_pr9.json"),
        r#"{"benches": [{"bench": "rc4_keystream/65536", "ns_per_iter": 1e15}]}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr10.json"),
        r#"{"benches": [{"bench": "rc4_keystream/65536", "ns_per_iter": 1.0}]}"#,
    )
    .unwrap();
    let gate = bench_in(&dir, &["bench", "--compare", "latest"]);
    assert_eq!(gate.status.code(), Some(1), "{}", stderr(&gate));
    assert!(
        stderr(&gate).contains("resolved to BENCH_pr10.json"),
        "{}",
        stderr(&gate)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repro bench --compare latest` in a directory holding only
/// `BENCH_baseline.json` falls back to the baseline with a note instead of
/// erroring — the state of a freshly seeded repo before its first PR lands
/// a numbered trajectory file.
#[test]
fn bench_compare_latest_falls_back_to_baseline() {
    let dir = std::env::temp_dir().join(format!("repro-bench-baseline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A baseline the gate must trip on proves the fallback file was used.
    std::fs::write(
        dir.join("BENCH_baseline.json"),
        r#"{"benches": [{"bench": "rc4_keystream/65536", "ns_per_iter": 1.0}]}"#,
    )
    .unwrap();
    let gate = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["bench", "--compare", "latest"])
        .current_dir(&dir)
        .env("REPRO_BENCH_FAST", "1")
        .output()
        .expect("repro binary runs");
    assert_eq!(gate.status.code(), Some(1), "{}", stderr(&gate));
    let err = stderr(&gate);
    assert!(err.contains("falling back to BENCH_baseline.json"), "{err}");
    assert!(err.contains("resolved to BENCH_baseline.json"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--until-confident` maps experiment names to their streaming variants:
/// `fig7` runs `fig7-stream`, experiments without a variant are rejected
/// with exit 2 naming the ones that have one, and the resulting report
/// carries the ciphertexts-consumed-at-stop headline.
#[test]
fn until_confident_maps_to_streaming_variants() {
    let output = repro(&[
        "run",
        "fig7",
        "--until-confident",
        "--scale",
        "quick",
        "--json",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let reports: Vec<ExperimentReport> = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].id, "fig7-stream");
    assert!(
        reports[0]
            .notes
            .iter()
            .any(|n| n.contains("consumed at stop")),
        "missing the ciphertexts-consumed-at-stop headline: {:?}",
        reports[0].notes
    );
    // The acceptance bar for streaming mode: at quick scale, at least one
    // seeded trial stops before the fixed-grid ciphertext budget (the cap).
    assert!(
        reports[0]
            .rows
            .iter()
            .any(|r| r.cells[2] == "early (confident)"),
        "no quick-scale trial stopped early: {:?}",
        reports[0].rows
    );

    let no_variant = repro(&["run", "fig8", "--until-confident"]);
    assert_eq!(no_variant.status.code(), Some(2));
    let err = stderr(&no_variant);
    assert!(err.contains("no --until-confident variant"), "{err}");
    assert!(
        err.contains("fig7") && err.contains("fig10") && err.contains("tls-cookie"),
        "{err}"
    );

    let listed = repro(&["list", "--until-confident"]);
    assert_eq!(listed.status.code(), Some(2));
}

/// `--trace` is observation, not perturbation: `repro run all --scale quick
/// --json` is byte-identical with and without it, the trace file is
/// schema-versioned JSONL with nested spans, and `repro trace summarize`
/// aggregates it in both human and `--json` form.
#[test]
fn trace_flag_is_result_neutral_and_summarizable() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("repro-cli-trace-{}.jsonl", std::process::id()));
    let plain = repro(&["run", "all", "--scale", "quick", "--json"]);
    assert!(plain.status.success(), "stderr: {}", stderr(&plain));
    let traced = repro(&[
        "run",
        "all",
        "--scale",
        "quick",
        "--json",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert!(traced.status.success(), "stderr: {}", stderr(&traced));
    assert_eq!(
        stdout(&plain),
        stdout(&traced),
        "--trace changed the result document; tracing must be observation-only"
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace file was written");
    let first = text.lines().next().expect("trace file is non-empty");
    let meta: serde::Value = serde_json::from_str(first).expect("meta line parses");
    assert!(
        matches!(meta.field("schema"), Ok(serde::Value::Str(s)) if s == "rc4-obs-trace"),
        "first line must be the schema meta header, got: {first}"
    );
    // Spans from all three instrumented layers, with real nesting.
    assert!(text.contains("\"name\":\"exec.map\""), "no executor spans");
    assert!(
        text.contains("\"name\":\"store.load_or_generate\""),
        "no store spans"
    );
    assert!(
        text.contains("\"name\":\"experiment.run\""),
        "no experiment spans"
    );
    let has_nested = text.lines().skip(1).any(|line| {
        serde_json::from_str::<serde::Value>(line)
            .ok()
            .is_some_and(|v| matches!(v.field("depth"), Ok(serde::Value::UInt(d)) if *d > 0))
    });
    assert!(has_nested, "no nested (depth > 0) spans in the trace");

    let table = repro(&["trace", "summarize", trace_path.to_str().unwrap()]);
    assert!(table.status.success(), "stderr: {}", stderr(&table));
    assert!(stdout(&table).contains("exec.map"), "{}", stdout(&table));
    let json = repro(&["trace", "summarize", trace_path.to_str().unwrap(), "--json"]);
    assert!(json.status.success(), "stderr: {}", stderr(&json));
    let summary: serde::Value =
        serde_json::from_str(&stdout(&json)).expect("summarize --json parses");
    assert!(
        matches!(summary.field("spans"), Ok(serde::Value::Array(s)) if !s.is_empty()),
        "summary lacks a non-empty `spans` array"
    );
    let _ = std::fs::remove_file(&trace_path);

    // Unreadable file: clean exit 1; unknown subcommand: usage with exit 2.
    let missing = repro(&["trace", "summarize", "/nonexistent/trace.jsonl"]);
    assert_eq!(missing.status.code(), Some(1));
    let unknown = repro(&["trace", "frobnicate", "x"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(stderr(&unknown).contains("usage: repro trace"));
}

/// Streaming mode honours the worker-invariance contract: the
/// `--until-confident` JSON output is byte-identical between `--workers 1`
/// and `--workers 4`.
#[test]
fn until_confident_is_byte_identical_across_worker_counts() {
    let run = |workers: &str| {
        let output = repro(&[
            "run",
            "fig7",
            "fig10",
            "--until-confident",
            "--scale",
            "quick",
            "--json",
            "--workers",
            workers,
        ]);
        assert!(output.status.success(), "stderr: {}", stderr(&output));
        stdout(&output)
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(
        one, four,
        "--workers changed streaming output; parallelism must be result-neutral"
    );
}

/// Forcing an engine must never change *what* the bench suite measures —
/// only how fast it runs. `RC4_ACCEL_FORCE=portable` and the unforced auto
/// run emit the identical set of bench names (timings differ, the suite
/// does not), and the JSON `engine` field faithfully reports the force.
/// The per-engine rekey benches and the blocked dense-likelihood bench the
/// CI perf smoke relies on are pinned by name here.
#[test]
fn bench_engine_force_is_suite_neutral_and_reported() {
    let bench_json = |force: Option<&str>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(["bench", "--json"]).env("REPRO_BENCH_FAST", "1");
        if let Some(engine) = force {
            cmd.env("RC4_ACCEL_FORCE", engine);
        } else {
            cmd.env_remove("RC4_ACCEL_FORCE");
        }
        let output = cmd.output().expect("repro binary runs");
        assert!(output.status.success(), "{}", stderr(&output));
        serde_json::from_str::<serde::Value>(&stdout(&output)).expect("bench JSON parses")
    };
    let names_of = |report: &serde::Value| -> Vec<String> {
        let serde::Value::Array(benches) = report.field("benches").expect("benches array").clone()
        else {
            panic!("`benches` is not an array");
        };
        let mut names: Vec<String> = benches
            .iter()
            .map(|b| match b.field("bench") {
                Ok(serde::Value::Str(name)) => name.clone(),
                other => panic!("bench entry without name: {other:?}"),
            })
            .collect();
        names.sort();
        names
    };

    let auto = bench_json(None);
    let forced = bench_json(Some("portable"));
    assert_eq!(
        names_of(&auto),
        names_of(&forced),
        "forcing an engine changed the bench suite itself"
    );
    match forced.field("engine") {
        Ok(serde::Value::Str(engine)) => assert_eq!(engine, "portable"),
        other => panic!("forced run lacks a top-level engine field: {other:?}"),
    }
    // Auto resolves to *some* real engine name (never empty, never "auto").
    match auto.field("engine") {
        Ok(serde::Value::Str(engine)) => {
            assert!(
                !engine.is_empty() && engine != "auto",
                "engine = {engine:?}"
            )
        }
        other => panic!("auto run lacks a top-level engine field: {other:?}"),
    }

    // The CI perf smoke asserts these exact names; keep them pinned.
    let names = names_of(&auto);
    assert!(
        names.iter().any(|n| n == "rc4_batch_rekey/256x68/portable"),
        "missing per-engine rekey bench: {names:?}"
    );
    assert!(
        names
            .iter()
            .any(|n| n == "recovery_likelihood/dense_512c_65536"),
        "missing blocked dense-likelihood bench: {names:?}"
    );
}

/// `repro bench --engine <name>` rejects unknown engines with exit 2 and
/// lists the valid choices; the same contract applies to a bogus
/// `RC4_ACCEL_FORCE` already in the environment (clean exit 2, no panic).
#[test]
fn bench_engine_flag_rejects_unknown_engines_listing_choices() {
    let output = repro(&["bench", "--engine", "sse9"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("choices: auto, avx512, avx2, neon, portable"),
        "{}",
        stderr(&output)
    );

    let env_bogus = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["bench"])
        .env("REPRO_BENCH_FAST", "1")
        .env("RC4_ACCEL_FORCE", "quantum")
        .output()
        .expect("repro binary runs");
    assert_eq!(env_bogus.status.code(), Some(2), "{}", stderr(&env_bogus));
    assert!(
        stderr(&env_bogus).contains("RC4_ACCEL_FORCE"),
        "{}",
        stderr(&env_bogus)
    );
}

/// Multi-core speedup proof: `--workers 4` must keep the pool busy enough
/// that the utilization-implied speedup W*busy/(busy+idle) clears 1.7x.
/// The busy/idle split comes from the `exec.worker_busy_us` /
/// `exec.worker_idle_us` counters in the `--metrics-out` snapshot. On
/// machines with fewer than 4 cores the threads time-slice one CPU and the
/// ratio says nothing about the pool, so the assertion is skipped with an
/// explicit notice.
#[test]
fn workers_four_implies_multicore_speedup_from_pool_utilization() {
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let metrics_path =
        std::env::temp_dir().join(format!("repro-metrics-speedup-{}.json", std::process::id()));
    let output = repro(&[
        "run",
        "fig7",
        "--scale",
        "quick",
        "--workers",
        "4",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = std::fs::read_to_string(&metrics_path).expect("metrics snapshot written");
    let _ = std::fs::remove_file(&metrics_path);
    let snapshot: serde::Value = serde_json::from_str(&text).expect("metrics JSON parses");
    let counter = |name: &str| -> f64 {
        match snapshot.field("counters").and_then(|c| c.field(name)) {
            Ok(serde::Value::UInt(v)) => *v as f64,
            other => panic!("counter {name} missing from snapshot: {other:?}"),
        }
    };
    let busy = counter("exec.worker_busy_us");
    let idle = counter("exec.worker_idle_us");
    assert!(busy > 0.0, "workers recorded no busy time");
    let implied_speedup = 4.0 * busy / (busy + idle);
    if nproc < 4 {
        eprintln!(
            "SKIP: multi-core speedup assertion needs >= 4 cores (have {nproc}); \
             measured utilization-implied speedup {implied_speedup:.2}x for the record"
        );
        return;
    }
    assert!(
        implied_speedup >= 1.7,
        "utilization-implied speedup {implied_speedup:.2}x < 1.7x \
         (busy {busy}us, idle {idle}us at --workers 4)"
    );
}
