//! Benchmark and reproduction support crate.
//!
//! This crate hosts two things:
//!
//! * the Criterion benchmarks (`benches/`), one per paper table/figure plus the
//!   ablation benches called out in DESIGN.md, and
//! * the `repro` binary (`src/bin/repro.rs`), a thin driver over
//!   `rc4_attacks::Registry` that regenerates every table, figure and
//!   end-to-end attack at a chosen scale and renders the reports as text or
//!   JSON (the numbers recorded in `EXPERIMENTS.md` come from this binary).
//!
//! The library portion only exposes small helpers shared by the benches.

use rc4_attacks::experiments::{biases::BiasScale, Scale};

/// Maps a scale preset to the bias-experiment configuration.
///
/// Kept as a bench-facing alias; the presets themselves live with the
/// experiments in [`BiasScale::for_scale`].
pub fn bias_scale_for(scale: Scale) -> BiasScale {
    BiasScale::for_scale(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_effort() {
        let quick = bias_scale_for(Scale::Quick);
        let laptop = bias_scale_for(Scale::Laptop);
        let extended = bias_scale_for(Scale::Extended);
        assert!(quick.keys < laptop.keys);
        assert!(laptop.keys < extended.keys);
    }
}
