//! Benchmark and reproduction support crate.
//!
//! This crate hosts two things:
//!
//! * the Criterion benchmarks (`benches/`), one per paper table/figure plus the
//!   ablation benches called out in DESIGN.md, and
//! * the `repro` binary (`src/bin/repro.rs`), which regenerates the rows/series
//!   of every table and figure at a chosen scale and renders them as text or
//!   JSON (the numbers recorded in `EXPERIMENTS.md` come from this binary).
//!
//! The library portion only exposes small helpers shared between the two.

use rc4_attacks::experiments::{biases::BiasScale, Scale};

/// Maps a scale preset to the bias-experiment configuration used by both the
/// benches and the `repro` binary.
pub fn bias_scale_for(scale: Scale) -> BiasScale {
    match scale {
        Scale::Quick => BiasScale::quick(),
        Scale::Laptop => BiasScale::default(),
        Scale::Extended => BiasScale {
            keys: 1 << 26,
            longterm_keys: 1 << 12,
            longterm_block: 1 << 22,
            ..BiasScale::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_effort() {
        let quick = bias_scale_for(Scale::Quick);
        let laptop = bias_scale_for(Scale::Laptop);
        let extended = bias_scale_for(Scale::Extended);
        assert!(quick.keys < laptop.keys);
        assert!(laptop.keys < extended.keys);
    }
}
