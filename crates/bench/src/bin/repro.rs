//! `repro` — thin driver over the experiment registry: regenerate every
//! table, figure and end-to-end attack of the paper at a chosen scale.
//!
//! Usage:
//!
//! ```text
//! repro list
//! repro run <NAME...|all> [--scale quick|laptop|extended] [--seed N]
//!           [--workers W] [--json] [--config FILE] [--cache-dir DIR]
//!           [--trace FILE]
//!
//! --scale      per-experiment preset to start from        (default: quick)
//! --seed       global seed mixed into every experiment    (default: 0)
//! --workers    dataset-generation worker threads          (default: 1)
//! --json       print ONLY a JSON array with one report per experiment
//! --config     JSON object {"<experiment>": {<config>}, ...}; each value is a
//!              COMPLETE config object that replaces the scale preset for that
//!              experiment (print a template with `Experiment::config_json`)
//! --cache-dir  dataset cache directory: matching complete datasets are
//!              loaded instead of regenerated, fresh ones are persisted
//! --trace      write a span trace of the run as JSONL (also: REPRO_TRACE=FILE);
//!              results are byte-identical with or without it
//!
//! # offline trace aggregation (see README "Observability"):
//! repro trace summarize FILE [--json]
//!
//! # the persistent dataset store (see README "On-disk dataset store"):
//! repro dataset generate --out FILE --kind KIND [shape flags] [config flags]
//!                        [--worker-range LO..HI] [--checkpoint-keys N]
//!                        [--stop-after-keys N]
//! repro dataset resume FILE [--checkpoint-keys N] [--stop-after-keys N]
//! repro dataset merge --out FILE SHARD...
//! repro dataset info FILE [--json]
//!
//! # fleet-scale dataset campaigns (see README "Fleet campaigns"):
//! repro campaign plan --dir DIR --kind KIND --shape A[,B,...] --leases N [config flags]
//! repro campaign run --dir DIR --out FILE [--procs P] [--heartbeat-timeout-ms N] ...
//! repro campaign resume ... | repro campaign status --dir DIR [--json]
//! repro campaign worker --dir DIR   # spawned by `run`; speaks the JSON-line protocol
//!
//! # the perf smoke mode and CI regression gate (see README "Performance"):
//! repro bench [--json] [--compare BENCH_FILE] [--tolerance PCT]
//!
//! # the resident job server and its clients (see README "Serving mode"):
//! repro serve [--addr HOST:PORT] [--state-dir DIR] [--budget N]
//!             [--default-workers W] [--cache-dir DIR] [--no-cache]
//! repro submit NAME [--scale S] [--seed N] [--priority P] [--workers W]
//! repro jobs [--json]
//! repro watch ID [--from N]
//! repro result ID [--telemetry]
//! repro cancel ID
//! repro status [--json|--metrics]
//! repro shutdown [--deadline-ms N]
//! # clients find the server through --addr or the `addr` file in --state-dir
//!
//! # legacy form, kept for muscle memory and old scripts:
//! repro [EXPERIMENT] [SCALE] [--json]
//! ```
//!
//! Everything experiment-specific — names, summaries, per-scale defaults,
//! config schemas — lives in the registry (`rc4_attacks::Registry`); this
//! binary only parses arguments and renders reports.

use std::process::ExitCode;
use std::sync::Arc;

use rc4_attacks::{
    context::StderrSink, experiments::Scale, Experiment, ExperimentContext, ExperimentReport,
    Registry,
};

/// Parsed command line.
struct Args {
    command: Command,
    scale: Scale,
    seed: u64,
    workers: usize,
    json: bool,
    until_confident: bool,
    config_path: Option<String>,
    cache_dir: Option<String>,
    trace_path: Option<String>,
    metrics_out: Option<String>,
}

enum Command {
    List,
    Run(Vec<String>),
}

fn usage() -> String {
    "usage: repro list\n       \
     repro run <NAME...|all> [--until-confident] [--scale S] [--seed N] [--workers W] [--json] [--config FILE] [--cache-dir DIR] [--trace FILE] [--metrics-out FILE]\n       \
     repro dataset <generate|resume|merge|info> ... (see `repro dataset --help`)\n       \
     repro campaign <plan|run|resume|worker|status> ... (see `repro campaign --help`)\n       \
     repro bench [--json] [--compare BENCH_FILE] [--tolerance PCT]\n       \
     repro trace summarize FILE [--json]\n       \
     repro serve|submit|jobs|watch|result|cancel|status|shutdown ... (see `repro serve --help`)"
        .to_string()
}

/// Parses the command line; `Err` carries the message and exit status
/// (`--help` exits 0 with usage on stdout, parse errors exit 2 on stderr).
fn parse_args(args: &[String]) -> Result<Args, (String, u8)> {
    let mut positional: Vec<String> = Vec::new();
    let mut scale: Option<Scale> = None;
    let mut seed = 0u64;
    let mut workers = 1usize;
    let mut json = false;
    let mut until_confident = false;
    let mut config_path = None;
    let mut cache_dir = None;
    let mut trace_path = None;
    let mut metrics_out = None;

    let fail = |msg: String| (msg, 2u8);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--until-confident" => until_confident = true,
            "--scale" | "--seed" | "--workers" | "--config" | "--cache-dir" | "--trace"
            | "--metrics-out" => {
                let value = it
                    .next()
                    .ok_or_else(|| fail(format!("{arg} requires a value\n{}", usage())))?;
                match arg.as_str() {
                    "--scale" => scale = Some(parse_scale(value).map_err(fail)?),
                    "--seed" => {
                        seed = parse_u64(value).map_err(|_| {
                            fail(format!("--seed expects an integer, got '{value}'"))
                        })?;
                    }
                    "--workers" => {
                        workers = value.parse().map_err(|_| {
                            fail(format!("--workers expects an integer, got '{value}'"))
                        })?;
                        if workers == 0 {
                            return Err(fail(
                                "--workers must be at least 1: the worker count partitions the \
                                 deterministic key space, so there is no meaningful zero-worker run"
                                    .to_string(),
                            ));
                        }
                    }
                    "--cache-dir" => cache_dir = Some(value.clone()),
                    "--trace" => trace_path = Some(value.clone()),
                    "--metrics-out" => metrics_out = Some(value.clone()),
                    _ => config_path = Some(value.clone()),
                }
            }
            "--help" | "-h" => return Err((usage(), 0)),
            other if other.starts_with("--") => {
                return Err(fail(format!("unknown flag '{other}'\n{}", usage())))
            }
            other => positional.push(other.to_string()),
        }
    }

    let command = match positional.split_first() {
        None => Command::Run(vec!["all".to_string()]),
        Some((first, rest)) => match first.as_str() {
            "list" => {
                if !rest.is_empty() {
                    return Err(fail(format!(
                        "'repro list' takes no arguments\n{}",
                        usage()
                    )));
                }
                Command::List
            }
            "run" => {
                if rest.is_empty() {
                    return Err(fail(format!(
                        "'repro run' needs experiment names\n{}",
                        usage()
                    )));
                }
                Command::Run(rest.to_vec())
            }
            // Legacy form: exactly one experiment plus an optional scale.
            // Anything longer is ambiguous (name list vs name+scale), so
            // point at the explicit `run` subcommand instead of guessing.
            _ => {
                match rest {
                    [] => {}
                    [scale_name] => {
                        if scale.is_some() {
                            return Err(fail(format!(
                                "give the scale either positionally or via --scale, not both\n{}",
                                usage()
                            )));
                        }
                        scale = Some(parse_scale(scale_name).map_err(fail)?);
                    }
                    _ => {
                        return Err(fail(format!(
                            "the legacy form takes one experiment and an optional scale; \
                             use 'repro run <NAME...>' to run several experiments\n{}",
                            usage()
                        )));
                    }
                }
                Command::Run(vec![first.to_string()])
            }
        },
    };

    Ok(Args {
        command,
        scale: scale.unwrap_or(Scale::Quick),
        seed,
        workers,
        json,
        until_confident,
        config_path,
        cache_dir,
        trace_path,
        metrics_out,
    })
}

/// Maps experiment names to their streaming `--until-confident` variants.
///
/// Canonical names and aliases resolve through the registry first, so
/// `fig9`-style aliases and already-streaming names (`fig7-stream`) work;
/// `all` maps to every experiment that has a streaming variant.
fn until_confident_names(registry: &Registry, names: &[String]) -> Result<Vec<String>, String> {
    let mut streaming: Vec<String> = Vec::new();
    for name in names {
        if name == "all" {
            streaming.extend(
                registry
                    .names()
                    .iter()
                    .filter(|n| n.ends_with("-stream"))
                    .map(|n| n.to_string()),
            );
            continue;
        }
        let Some(entry) = registry.find(name) else {
            return Err(format!(
                "unknown experiment '{name}'; registered experiments: {}",
                registry.names().join(", ")
            ));
        };
        let canonical = entry.name();
        if canonical.ends_with("-stream") {
            streaming.push(canonical.to_string());
            continue;
        }
        let variant = format!("{canonical}-stream");
        if registry.find(&variant).is_none() {
            let available: Vec<String> = registry
                .names()
                .iter()
                .filter_map(|n| n.strip_suffix("-stream"))
                .map(|n| n.to_string())
                .collect();
            return Err(format!(
                "'{canonical}' has no --until-confident variant; experiments with one: {}",
                available.join(", ")
            ));
        }
        streaming.push(variant);
    }
    Ok(streaming)
}

fn parse_scale(name: &str) -> Result<Scale, String> {
    Scale::parse(name).ok_or_else(|| {
        let known: Vec<&str> = Scale::ALL.iter().map(|s| s.name()).collect();
        format!("unknown scale '{name}' (expected {})", known.join(" | "))
    })
}

/// Parses a u64 accepting both decimal and `0x`-prefixed hex (seeds are
/// usually quoted in hex in the experiment docs).
fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("expected an integer, got '{s}'"))
}

/// Loads and validates the `--config` overrides: a JSON object keyed by
/// registered experiment name (or alias), with each value a *complete*
/// config object for that experiment. Keys are canonicalized through the
/// registry so alias-keyed entries (e.g. `"fig9"`) reach the experiment.
fn load_config_overrides(
    registry: &Registry,
    path: &str,
) -> Result<Vec<(String, serde::Value)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read config {path}: {e}"))?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("config {path} is not valid JSON: {e}"))?;
    let serde::Value::Object(fields) = value else {
        return Err(format!(
            "config {path} must be a JSON object keyed by experiment name"
        ));
    };
    let mut overrides: Vec<(String, serde::Value)> = Vec::with_capacity(fields.len());
    for (name, value) in fields {
        let Some(entry) = registry.find(&name) else {
            return Err(format!(
                "config {path} mentions unknown experiment '{name}'; registered experiments: {}",
                registry.names().join(", ")
            ));
        };
        let canonical = entry.name().to_string();
        if overrides.iter().any(|(n, _)| *n == canonical) {
            return Err(format!(
                "config {path} configures '{canonical}' twice (aliases count)"
            ));
        }
        overrides.push((canonical, value));
    }
    Ok(overrides)
}

/// Resolves `names` ("all" expands to the whole registry) into instantiated
/// experiments at `scale` with `overrides` applied.
fn build_experiments(
    registry: &Registry,
    names: &[String],
    scale: Scale,
    overrides: &[(String, serde::Value)],
) -> Result<Vec<Box<dyn Experiment>>, String> {
    let mut resolved: Vec<&str> = Vec::new();
    for name in names {
        if name == "all" {
            resolved.extend(registry.names());
        } else {
            resolved.push(name.as_str());
        }
    }
    let mut experiments = Vec::with_capacity(resolved.len());
    let mut overrides_used = vec![false; overrides.len()];
    for name in resolved {
        let mut experiment = registry.create(name).map_err(|e| e.to_string())?;
        experiment.apply_scale(scale);
        let canonical = experiment.name();
        if let Some(idx) = overrides.iter().position(|(n, _)| n == canonical) {
            experiment
                .set_config_value(&overrides[idx].1)
                .map_err(|e| e.to_string())?;
            overrides_used[idx] = true;
        }
        experiments.push(experiment);
    }
    // A validated-but-unused override would silently produce preset results
    // the user believes were overridden; refuse instead.
    let unused: Vec<&str> = overrides
        .iter()
        .zip(&overrides_used)
        .filter(|(_, used)| !**used)
        .map(|((name, _), _)| name.as_str())
        .collect();
    if !unused.is_empty() {
        return Err(format!(
            "--config configures {} but {} not being run; add the name(s) to 'repro run' or drop the entry",
            unused.join(", "),
            if unused.len() == 1 { "it is" } else { "they are" }
        ));
    }
    Ok(experiments)
}

fn run() -> Result<(), (String, u8)> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("dataset") {
        return dataset_cli::run(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("campaign") {
        return campaign_cli::run(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("bench") {
        return bench_cli::run(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("trace") {
        return trace_cli::run(&raw[1..]);
    }
    if let Some(first) = raw.first().map(String::as_str) {
        if matches!(
            first,
            "serve" | "submit" | "jobs" | "watch" | "result" | "cancel" | "status" | "shutdown"
        ) {
            return serve_cli::run(first, &raw[1..]);
        }
    }
    let args = parse_args(&raw)?;
    let registry = Registry::with_defaults();

    if args.until_confident && matches!(args.command, Command::List) {
        return Err((
            format!("--until-confident only applies to 'repro run'\n{}", usage()),
            2,
        ));
    }

    match args.command {
        Command::List => {
            if args.json {
                let scales: Vec<serde::Value> = Scale::ALL
                    .iter()
                    .map(|s| serde::Value::Str(s.name().into()))
                    .collect();
                let entries: Vec<serde::Value> = registry
                    .entries()
                    .iter()
                    .map(|e| {
                        serde::Value::Object(vec![
                            ("name".into(), serde::Value::Str(e.name().into())),
                            ("summary".into(), serde::Value::Str(e.summary().into())),
                            (
                                "aliases".into(),
                                serde::Value::Array(
                                    e.aliases()
                                        .iter()
                                        .map(|a| serde::Value::Str((*a).into()))
                                        .collect(),
                                ),
                            ),
                            ("scales".into(), serde::Value::Array(scales.clone())),
                        ])
                    })
                    .collect();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&entries).expect("list serializes")
                );
            } else {
                let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
                for entry in registry.entries() {
                    println!("{:width$}  {}", entry.name(), entry.summary());
                }
            }
            Ok(())
        }
        Command::Run(names) => {
            let names = if args.until_confident {
                until_confident_names(&registry, &names).map_err(|msg| (msg, 2))?
            } else {
                names
            };
            let overrides = match &args.config_path {
                Some(path) => load_config_overrides(&registry, path).map_err(|msg| (msg, 2))?,
                None => Vec::new(),
            };
            let experiments = build_experiments(&registry, &names, args.scale, &overrides)
                .map_err(|msg| (msg, 2))?;

            let mut ctx = ExperimentContext::new()
                .with_seed(args.seed)
                .with_workers(args.workers)
                .with_sink(Arc::new(StderrSink));
            if let Some(dir) = &args.cache_dir {
                ctx = ctx
                    .with_cache_dir(dir)
                    .map_err(|e| (format!("--cache-dir {dir}: {e}"), 2))?;
            }
            eprintln!(
                "repro: running {} experiment(s) at scale {} (seed {}, {} worker(s){})",
                experiments.len(),
                args.scale.name(),
                args.seed,
                args.workers,
                args.cache_dir
                    .as_deref()
                    .map(|d| format!(", cache {d}"))
                    .unwrap_or_default()
            );

            let trace_path = args
                .trace_path
                .clone()
                .or_else(|| std::env::var("REPRO_TRACE").ok().filter(|p| !p.is_empty()));
            if let Some(path) = &trace_path {
                rc4_obs::trace::init_file(std::path::Path::new(path))
                    .map_err(|e| (format!("--trace {path}: {e}"), 2))?;
            }
            // `--metrics-out` switches the metrics registry on for this run
            // and dumps the final snapshot as JSON. The executor's
            // `exec.worker_busy_us` / `exec.worker_idle_us` counters in that
            // snapshot are what the multi-core utilization tests read.
            if args.metrics_out.is_some() {
                rc4_obs::metrics::enable();
            }

            let mut reports: Vec<ExperimentReport> = Vec::with_capacity(experiments.len());
            for experiment in &experiments {
                let report = experiment
                    .run_observed(&ctx)
                    .map_err(|e| (format!("experiment '{}' failed: {e}", experiment.name()), 1))?;
                if !args.json {
                    println!("{}", report.render());
                }
                reports.push(report);
            }
            if trace_path.is_some() {
                rc4_obs::trace::flush();
            }
            if let Some(path) = &args.metrics_out {
                let snapshot = rc4_obs::metrics::snapshot().to_value();
                let text =
                    serde_json::to_string_pretty(&snapshot).expect("metrics snapshot serializes");
                std::fs::write(path, format!("{text}\n"))
                    .map_err(|e| (format!("--metrics-out {path}: {e}"), 1))?;
            }
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&reports).expect("reports serialize")
                );
            }
            Ok(())
        }
    }
}

/// The `repro dataset` subcommand family: drive the `rc4-store` persistence
/// layer (generate / resume / merge / info) from the command line.
mod dataset_cli {
    use std::path::{Path, PathBuf};

    use rc4_stats::{
        longterm::LongTermDataset,
        pairs::{PairDataset, PositionPair},
        single::SingleByteDataset,
        tsc::{PerTscDataset, TscConditioning},
        DatasetError, GenerationConfig,
    };
    use rc4_store::{
        generate_shard, merge_shards, merge_shards_streaming, merge_shards_tiered, peek_header,
        peek_shard, read_shard, resume_shard, CellEncoding, GenerateOptions, GenerateStatus,
        MergeOptions, ShardHeader, ShardSpec,
    };

    use super::parse_u64;

    const KINDS: &str = "single | pairs | longterm | per-tsc";

    fn usage() -> String {
        "usage: repro dataset generate --out FILE --kind KIND [shape flags] \
         [--keys N] [--workers W] [--seed N] [--key-len L] [--worker-range LO..HI] \
         [--checkpoint-keys N] [--stop-after-keys N] [--compress]\n       \
         repro dataset resume FILE [--checkpoint-keys N] [--stop-after-keys N]\n       \
         repro dataset merge --out FILE [--streaming] [--fan-in N] [--window-cells N] \
         [--compress] SHARD SHARD...\n       \
         repro dataset info FILE [--json]\n\
         \n\
         --compress writes v2 delta+varint cells (smaller; v1 raw cells stay the\n\
         byte-identity default); resume always keeps the file's own encoding.\n\
         merge --streaming sums shards through fixed windows instead of loading\n\
         them whole; --fan-in caps simultaneously open inputs (tiered merge).\n\
         \n\
         kinds and their shape flags:\n  \
         single    --positions P                 per-position byte counts (Fig. 6 style)\n  \
         pairs     --consecutive R | --pairs a:b,c:d...   joint pair counts (consec512/first16 style)\n  \
         longterm  --block B [--drop D]          long-term digraphs (default drop 1023)\n  \
         per-tsc   --positions P [--conditioning tsc1|tsc0tsc1]   TKIP per-TSC counts (Fig. 8)"
            .to_string()
    }

    /// The dataset shape selected on the command line.
    enum KindSpec {
        Single {
            positions: usize,
        },
        Pairs(Vec<PositionPair>),
        LongTerm {
            drop: usize,
            block: usize,
        },
        PerTsc {
            conditioning: TscConditioning,
            positions: usize,
        },
    }

    /// Flags shared by `generate` (and partially by `resume`).
    struct GenerateArgs {
        out: PathBuf,
        spec: KindSpec,
        config: GenerationConfig,
        worker_range: Option<(u64, u64)>,
        opts: GenerateOptions,
    }

    type CliResult<T> = Result<T, (String, u8)>;

    fn fail<T>(msg: impl Into<String>) -> CliResult<T> {
        Err((msg.into(), 2))
    }

    fn runtime<T>(e: DatasetError) -> CliResult<T> {
        Err((e.to_string(), 1))
    }

    pub fn run(args: &[String]) -> CliResult<()> {
        match args.first().map(String::as_str) {
            Some("--help") | Some("-h") => Err((usage(), 0)),
            None => Err((
                format!("'repro dataset' needs a subcommand\n{}", usage()),
                2,
            )),
            Some("generate") => generate(&args[1..]),
            Some("resume") => resume(&args[1..]),
            Some("merge") => merge(&args[1..]),
            Some("info") => info(&args[1..]),
            Some(other) => fail(format!("unknown dataset subcommand '{other}'\n{}", usage())),
        }
    }

    /// Stderr progress line per checkpoint.
    fn progress_printer(label: String) -> impl FnMut(u64, u64) {
        move |done, total| {
            let pct = if total == 0 {
                100.0
            } else {
                done as f64 / total as f64 * 100.0
            };
            eprintln!("repro: dataset {label}: {done}/{total} keys ({pct:.1}%)");
        }
    }

    fn parse_generate(args: &[String]) -> CliResult<GenerateArgs> {
        let mut out: Option<PathBuf> = None;
        let mut kind: Option<String> = None;
        let mut positions: Option<usize> = None;
        let mut pairs: Option<Vec<PositionPair>> = None;
        let mut consecutive: Option<usize> = None;
        let mut drop: Option<usize> = None;
        let mut block: Option<usize> = None;
        let mut conditioning = TscConditioning::Tsc1;
        let mut config = GenerationConfig::default();
        let mut worker_range = None;
        let mut opts = GenerateOptions::default();

        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = || -> CliResult<&String> {
                it.next()
                    .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2))
            };
            match arg.as_str() {
                "--out" => out = Some(PathBuf::from(value()?)),
                "--kind" => kind = Some(value()?.clone()),
                "--positions" => positions = Some(parse_usize(value()?)?),
                "--pairs" => pairs = Some(parse_pairs(value()?)?),
                "--consecutive" => consecutive = Some(parse_usize(value()?)?),
                "--drop" => drop = Some(parse_usize(value()?)?),
                "--block" => block = Some(parse_usize(value()?)?),
                "--conditioning" => {
                    conditioning = match value()?.as_str() {
                        "tsc1" => TscConditioning::Tsc1,
                        "tsc0tsc1" => TscConditioning::Tsc0Tsc1,
                        other => {
                            return fail(format!(
                                "unknown conditioning '{other}' (expected tsc1 | tsc0tsc1)"
                            ))
                        }
                    }
                }
                "--keys" => config.keys = parse_int(value()?)?,
                "--workers" => {
                    config.workers = parse_usize(value()?)?;
                    if config.workers == 0 {
                        return fail(
                            "--workers must be at least 1: the worker count partitions the \
                             deterministic key space, so there is no meaningful zero-worker run",
                        );
                    }
                }
                "--seed" => config.seed = parse_int(value()?)?,
                "--key-len" => config.key_len = parse_usize(value()?)?,
                "--worker-range" => worker_range = Some(parse_range(value()?)?),
                "--checkpoint-keys" => opts.checkpoint_keys = parse_int(value()?)?,
                "--stop-after-keys" => opts.stop_after_keys = Some(parse_int(value()?)?),
                "--compress" => opts.encoding = CellEncoding::DeltaVarint,
                other => return fail(format!("unknown flag '{other}'\n{}", usage())),
            }
        }

        let Some(out) = out else {
            return fail(format!("--out is required\n{}", usage()));
        };
        let Some(kind) = kind else {
            return fail(format!("--kind is required ({KINDS})\n{}", usage()));
        };
        let spec = match kind.as_str() {
            "single" => KindSpec::Single {
                positions: positions
                    .ok_or_else(|| ("kind 'single' needs --positions".to_string(), 2))?,
            },
            "pairs" => match (pairs, consecutive) {
                (Some(p), None) => KindSpec::Pairs(p),
                (None, Some(r)) if r > 0 => {
                    KindSpec::Pairs((1..=r).map(|a| PositionPair { a, b: a + 1 }).collect())
                }
                (None, Some(_)) => return fail("--consecutive must be at least 1"),
                (Some(_), Some(_)) => {
                    return fail("give either --pairs or --consecutive, not both")
                }
                (None, None) => {
                    return fail("kind 'pairs' needs --pairs a:b,c:d or --consecutive R")
                }
            },
            "longterm" => KindSpec::LongTerm {
                drop: drop.unwrap_or(LongTermDataset::DEFAULT_DROP),
                block: block.ok_or_else(|| ("kind 'longterm' needs --block".to_string(), 2))?,
            },
            "per-tsc" => KindSpec::PerTsc {
                conditioning,
                positions: positions
                    .ok_or_else(|| ("kind 'per-tsc' needs --positions".to_string(), 2))?,
            },
            other => return fail(format!("unknown kind '{other}' (expected {KINDS})")),
        };
        Ok(GenerateArgs {
            out,
            spec,
            config,
            worker_range,
            opts,
        })
    }

    /// Warns when the requested checkpoint interval exceeds the shard's key
    /// range: the interval is clamped (see
    /// `GenerateOptions::effective_checkpoint_keys`), so the run only
    /// checkpoints at completion — an operator who asked for intermediate
    /// checkpoints should know they are not getting any.
    fn warn_oversized_checkpoint(opts: &GenerateOptions, keys_total: u64) {
        if opts.checkpoint_keys > keys_total.max(1) {
            eprintln!(
                "repro: warning: --checkpoint-keys {} exceeds the shard's {} keys; \
                 clamping — the run will only checkpoint at completion",
                opts.checkpoint_keys, keys_total
            );
        }
    }

    fn generate(args: &[String]) -> CliResult<()> {
        let parsed = parse_generate(args)?;
        let (lo, hi) = parsed
            .worker_range
            .unwrap_or((0, parsed.config.workers as u64));
        let spec = ShardSpec::workers(parsed.config, lo, hi);
        let shard_keys: u64 = (lo..hi).map(|w| parsed.config.keys_for_worker(w)).sum();
        warn_oversized_checkpoint(&parsed.opts, shard_keys);
        let label = parsed.out.display().to_string();
        let mut progress = progress_printer(label.clone());
        let status = match parsed.spec {
            KindSpec::Single { positions } => {
                if positions == 0 {
                    return fail("--positions must be at least 1");
                }
                generate_shard(
                    &parsed.out,
                    SingleByteDataset::new(positions),
                    &spec,
                    &parsed.opts,
                    None,
                    &mut progress,
                )
            }
            KindSpec::Pairs(pairs) => match PairDataset::new(pairs) {
                Ok(empty) => {
                    generate_shard(&parsed.out, empty, &spec, &parsed.opts, None, &mut progress)
                }
                Err(e) => return fail(e.to_string()),
            },
            KindSpec::LongTerm { drop, block } => match LongTermDataset::new(drop, block) {
                Ok(empty) => {
                    generate_shard(&parsed.out, empty, &spec, &parsed.opts, None, &mut progress)
                }
                Err(e) => return fail(e.to_string()),
            },
            KindSpec::PerTsc {
                conditioning,
                positions,
            } => match PerTscDataset::new(conditioning, positions) {
                Ok(empty) => {
                    generate_shard(&parsed.out, empty, &spec, &parsed.opts, None, &mut progress)
                }
                Err(e) => return fail(e.to_string()),
            },
        };
        let status = match status {
            Ok(status) => status,
            Err(e) => return runtime(e),
        };
        report_status(&label, status)
    }

    fn resume(args: &[String]) -> CliResult<()> {
        let mut file: Option<PathBuf> = None;
        let mut opts = GenerateOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = || -> CliResult<&String> {
                it.next()
                    .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2))
            };
            match arg.as_str() {
                "--checkpoint-keys" => opts.checkpoint_keys = parse_int(value()?)?,
                "--stop-after-keys" => opts.stop_after_keys = Some(parse_int(value()?)?),
                other if other.starts_with("--") => {
                    return fail(format!("unknown flag '{other}'\n{}", usage()))
                }
                path if file.is_none() => file = Some(PathBuf::from(path)),
                _ => return fail(format!("'dataset resume' takes one file\n{}", usage())),
            }
        }
        let Some(file) = file else {
            return fail(format!("'dataset resume' needs a shard file\n{}", usage()));
        };
        let header = match peek_header(&file) {
            Ok(h) => h,
            Err(e) => return runtime(e),
        };
        warn_oversized_checkpoint(&opts, header.keys_total());
        let label = file.display().to_string();
        let mut progress = progress_printer(label.clone());
        let status = dispatch_kind(&header.kind, |d| match d {
            Dispatch::Single => {
                resume_shard::<SingleByteDataset>(&file, &opts, None, &mut progress)
            }
            Dispatch::Pairs => resume_shard::<PairDataset>(&file, &opts, None, &mut progress),
            Dispatch::LongTerm => {
                resume_shard::<LongTermDataset>(&file, &opts, None, &mut progress)
            }
            Dispatch::PerTsc => resume_shard::<PerTscDataset>(&file, &opts, None, &mut progress),
        })?;
        report_status(&label, status)
    }

    fn merge(args: &[String]) -> CliResult<()> {
        let mut out: Option<PathBuf> = None;
        let mut inputs: Vec<PathBuf> = Vec::new();
        let mut streaming = false;
        let mut options = MergeOptions::default();
        let mut fan_in: Option<usize> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out" | "--fan-in" | "--window-cells" => {
                    let value = it
                        .next()
                        .ok_or_else(|| (format!("{arg} requires a value"), 2))?;
                    match arg.as_str() {
                        "--out" => out = Some(PathBuf::from(value)),
                        "--fan-in" => {
                            let n = parse_usize(value)?;
                            if n < 2 {
                                return fail("--fan-in must be at least 2");
                            }
                            fan_in = Some(n);
                        }
                        _ => {
                            options.window_cells = parse_usize(value)?;
                            if options.window_cells == 0 {
                                return fail("--window-cells must be at least 1");
                            }
                            streaming = true;
                        }
                    }
                }
                "--streaming" => streaming = true,
                "--compress" => {
                    options.encoding = CellEncoding::DeltaVarint;
                    streaming = true;
                }
                other if other.starts_with("--") => {
                    return fail(format!("unknown flag '{other}'\n{}", usage()))
                }
                path => inputs.push(PathBuf::from(path)),
            }
        }
        let Some(out) = out else {
            return fail(format!("'dataset merge' needs --out\n{}", usage()));
        };
        if inputs.len() < 2 {
            return fail(format!(
                "'dataset merge' needs at least two input shards\n{}",
                usage()
            ));
        }
        if let Some(n) = fan_in {
            options.fan_in = n;
        }
        let header = match peek_header(&inputs[0]) {
            Ok(h) => h,
            Err(e) => return runtime(e),
        };
        let refs: Vec<&Path> = inputs.iter().map(PathBuf::as_path).collect();
        // --fan-in selects the tiered out-of-core merge, --streaming (or any
        // flag implying it) the windowed single-pass one; the default stays
        // the in-memory merge, whose output all three match byte for byte
        // (for the default raw encoding).
        let merged = dispatch_kind(&header.kind, |d| match d {
            Dispatch::Single if fan_in.is_some() => {
                merge_shards_tiered::<SingleByteDataset>(&refs, &out, &options)
            }
            Dispatch::Pairs if fan_in.is_some() => {
                merge_shards_tiered::<PairDataset>(&refs, &out, &options)
            }
            Dispatch::LongTerm if fan_in.is_some() => {
                merge_shards_tiered::<LongTermDataset>(&refs, &out, &options)
            }
            Dispatch::PerTsc if fan_in.is_some() => {
                merge_shards_tiered::<PerTscDataset>(&refs, &out, &options)
            }
            Dispatch::Single if streaming => {
                merge_shards_streaming::<SingleByteDataset>(&refs, &out, &options)
            }
            Dispatch::Pairs if streaming => {
                merge_shards_streaming::<PairDataset>(&refs, &out, &options)
            }
            Dispatch::LongTerm if streaming => {
                merge_shards_streaming::<LongTermDataset>(&refs, &out, &options)
            }
            Dispatch::PerTsc if streaming => {
                merge_shards_streaming::<PerTscDataset>(&refs, &out, &options)
            }
            Dispatch::Single => merge_shards::<SingleByteDataset>(&refs, &out),
            Dispatch::Pairs => merge_shards::<PairDataset>(&refs, &out),
            Dispatch::LongTerm => merge_shards::<LongTermDataset>(&refs, &out),
            Dispatch::PerTsc => merge_shards::<PerTscDataset>(&refs, &out),
        })?;
        eprintln!(
            "repro: dataset {}: merged {} shard(s), workers {}..{}, {} keys",
            out.display(),
            inputs.len(),
            merged.worker_lo,
            merged.worker_hi,
            merged.keys_done()
        );
        Ok(())
    }

    fn info(args: &[String]) -> CliResult<()> {
        let mut file: Option<PathBuf> = None;
        let mut json = false;
        for arg in args {
            match arg.as_str() {
                "--json" => json = true,
                other if other.starts_with("--") => {
                    return fail(format!("unknown flag '{other}'\n{}", usage()))
                }
                path if file.is_none() => file = Some(PathBuf::from(path)),
                _ => return fail(format!("'dataset info' takes one file\n{}", usage())),
            }
        }
        let Some(file) = file else {
            return fail(format!("'dataset info' needs a shard file\n{}", usage()));
        };
        let (header, encoding) = match peek_shard(&file) {
            Ok(pair) => pair,
            Err(e) => return runtime(e),
        };
        // A full typed read doubles as an integrity check (CRC, cell count).
        let verified = dispatch_kind(&header.kind, |d| match d {
            Dispatch::Single => read_shard::<SingleByteDataset>(&file).map(|s| s.header),
            Dispatch::Pairs => read_shard::<PairDataset>(&file).map(|s| s.header),
            Dispatch::LongTerm => read_shard::<LongTermDataset>(&file).map(|s| s.header),
            Dispatch::PerTsc => read_shard::<PerTscDataset>(&file).map(|s| s.header),
        })?;
        print_info(&file, &verified, encoding, json);
        Ok(())
    }

    fn print_info(file: &Path, header: &ShardHeader, encoding: CellEncoding, json: bool) {
        if json {
            // The header's own fields stay at the top level (scripts key off
            // `kind` etc.); the preamble-derived encoding rides along.
            let mut value = serde::Serialize::to_value(header);
            if let serde::Value::Object(fields) = &mut value {
                fields.push((
                    "encoding".to_string(),
                    serde::Value::Str(encoding.name().to_string()),
                ));
            }
            println!(
                "{}",
                serde_json::to_string_pretty(&value).expect("header serializes")
            );
            return;
        }
        println!("file:        {}", file.display());
        println!("kind:        {}", header.kind);
        println!("shape:       {:?}", header.shape);
        println!(
            "config:      keys={} workers={} seed={:#x} key_len={}",
            header.config.keys, header.config.workers, header.config.seed, header.config.key_len
        );
        println!(
            "workers:     {}..{} of {}",
            header.worker_lo, header.worker_hi, header.config.workers
        );
        println!(
            "progress:    {}/{} keys ({})",
            header.keys_done(),
            header.keys_total(),
            if header.is_complete() {
                "complete"
            } else {
                "resumable"
            }
        );
        println!("cells:       {}", header.cells);
        println!(
            "encoding:    {} (format v{})",
            encoding.name(),
            encoding.format_version()
        );
        println!("integrity:   CRC-32 verified");
    }

    /// The four storable kinds, for typed dispatch off a header's kind tag
    /// (shared with the campaign subcommands, which dispatch off the
    /// manifest's kind the same way).
    pub(super) enum Dispatch {
        Single,
        Pairs,
        LongTerm,
        PerTsc,
    }

    pub(super) fn dispatch_kind<T>(
        kind: &str,
        f: impl FnOnce(Dispatch) -> Result<T, DatasetError>,
    ) -> CliResult<T> {
        let d = match kind {
            "single" => Dispatch::Single,
            "pairs" => Dispatch::Pairs,
            "longterm" => Dispatch::LongTerm,
            "per-tsc" => Dispatch::PerTsc,
            other => return fail(format!("unknown dataset kind '{other}' (expected {KINDS})")),
        };
        f(d).or_else(|e| runtime(e))
    }

    fn report_status(label: &str, status: GenerateStatus) -> CliResult<()> {
        match status {
            GenerateStatus::Complete => {
                eprintln!("repro: dataset {label}: complete");
            }
            GenerateStatus::Stopped => {
                eprintln!(
                    "repro: dataset {label}: stopped at the requested key count \
                     (checkpointed; continue with `repro dataset resume`)"
                );
            }
        }
        Ok(())
    }

    fn parse_int(s: &str) -> CliResult<u64> {
        parse_u64(s).map_err(|msg| (msg, 2))
    }

    fn parse_usize(s: &str) -> CliResult<usize> {
        parse_int(s).map(|v| v as usize)
    }

    /// `--pairs a:b,c:d,...`
    fn parse_pairs(s: &str) -> CliResult<Vec<PositionPair>> {
        let mut pairs = Vec::new();
        for part in s.split(',') {
            let Some((a, b)) = part.split_once(':') else {
                return fail(format!("--pairs expects a:b,c:d,... (got '{part}')"));
            };
            pairs.push(PositionPair {
                a: parse_usize(a.trim())?,
                b: parse_usize(b.trim())?,
            });
        }
        Ok(pairs)
    }

    /// `--worker-range LO..HI`
    fn parse_range(s: &str) -> CliResult<(u64, u64)> {
        let Some((lo, hi)) = s.split_once("..") else {
            return fail(format!("--worker-range expects LO..HI (got '{s}')"));
        };
        Ok((parse_int(lo.trim())?, parse_int(hi.trim())?))
    }
}

/// The `repro campaign` subcommand family: fleet-scale dataset generation.
///
/// A *campaign* splits one generation configuration's worker range into
/// seed-disjoint leases (`plan`), drives a pool of worker processes through
/// them (`run` / `resume`), and merges the finished lease shards into a
/// table byte-identical to what a single uninterrupted
/// `repro dataset generate` would have produced. Lease state lives in the
/// campaign directory's `campaign.json` manifest
/// (`rc4_store::campaign::CampaignManifest`), atomically rewritten on every
/// transition, so a killed coordinator resumes with `repro campaign run`
/// and loses at most the work since each worker's last checkpoint.
///
/// The coordinator talks to workers over the newline-delimited JSON
/// protocol of `rc4_store::campaign::{WorkerCommand, WorkerEvent}`
/// (stdin/stdout), spawning `repro campaign worker` children from the
/// current executable. A worker that crashes or goes silent past
/// `--heartbeat-timeout-ms` has its lease expired and re-granted; because
/// lease content is deterministic (worker `w` always derives its stream
/// from `(seed, w)`), the replacement resumes the crashed worker's shard
/// from its last checkpoint and the final merge is unaffected.
mod campaign_cli {
    use std::io::{BufRead, Write};
    use std::path::{Path, PathBuf};
    use std::process::Stdio;
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    use rc4_stats::{
        longterm::LongTermDataset, pairs::PairDataset, single::SingleByteDataset,
        tsc::PerTscDataset, DatasetError, GenerationConfig, StorableDataset,
    };
    use rc4_store::{
        campaign::{CampaignManifest, CampaignSpec, Lease, WorkerCommand, WorkerEvent},
        generate_shard, merge_shards_tiered, resume_shard, CellEncoding, GenerateOptions,
        GenerateStatus, MergeOptions, ShardSpec,
    };

    use super::dataset_cli::{dispatch_kind, Dispatch};
    use super::parse_u64;

    type CliResult<T> = Result<T, (String, u8)>;

    fn fail<T>(msg: impl Into<String>) -> CliResult<T> {
        Err((msg.into(), 2))
    }

    fn runtime<T>(e: DatasetError) -> CliResult<T> {
        Err((e.to_string(), 1))
    }

    /// The manifest's fixed file name inside a campaign directory.
    const MANIFEST_NAME: &str = "campaign.json";

    fn usage() -> String {
        "usage: repro campaign plan --dir DIR --kind KIND --shape A[,B,...] --leases N \
         [--keys N] [--workers W] [--seed N] [--key-len L]\n       \
         repro campaign run --dir DIR --out FILE [--procs P] [--checkpoint-keys N] \
         [--heartbeat-timeout-ms N] [--max-respawns N] [--max-attempts N] \
         [--fan-in N] [--compress] [--fail-first-after-keys N]\n       \
         repro campaign resume ... (alias of run: completed leases are skipped)\n       \
         repro campaign worker --dir DIR [--checkpoint-keys N] [--fail-after-keys N]\n       \
         repro campaign status --dir DIR [--json]\n\
         \n\
         plan splits the config's worker range into N contiguous seed-disjoint\n\
         leases and writes DIR/campaign.json; --shape is the dataset's raw shape\n\
         parameters (single: positions | pairs: a,b,... flattened pairs |\n\
         longterm: drop,block | per-tsc: cond,positions — see `repro dataset`).\n\
         run spawns P local `campaign worker` processes (default 2), re-leases\n\
         work from crashed or silent workers, and on completion merges every\n\
         lease shard into FILE — byte-identical to a single-process generate\n\
         (raw encoding; --compress writes a v2 delta+varint merged table).\n\
         worker is the child end of the coordinator's stdin/stdout JSON-line\n\
         protocol; --fail-after-keys makes it exit abnormally mid-lease after\n\
         checkpointing N keys (deterministic crash injection for tests, applied\n\
         by run's --fail-first-after-keys to the first worker only)."
            .to_string()
    }

    pub fn run(args: &[String]) -> CliResult<()> {
        match args.first().map(String::as_str) {
            Some("--help") | Some("-h") => Err((usage(), 0)),
            None => Err((
                format!("'repro campaign' needs a subcommand\n{}", usage()),
                2,
            )),
            Some("plan") => plan(&args[1..]),
            Some("run") | Some("resume") => coordinate(&args[1..]),
            Some("worker") => worker(&args[1..]),
            Some("status") => status(&args[1..]),
            Some(other) => fail(format!(
                "unknown campaign subcommand '{other}'\n{}",
                usage()
            )),
        }
    }

    fn parse_usize(s: &str) -> CliResult<usize> {
        parse_u64(s).map(|v| v as usize).map_err(|msg| (msg, 2))
    }

    // ---------------------------------------------------------------- plan

    fn plan(args: &[String]) -> CliResult<()> {
        let mut dir: Option<PathBuf> = None;
        let mut kind: Option<String> = None;
        let mut shape: Option<Vec<u64>> = None;
        let mut leases: Option<u64> = None;
        let mut config = GenerationConfig::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let value = match arg.as_str() {
                "--help" | "-h" => return Err((usage(), 0)),
                _ => it
                    .next()
                    .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2))?,
            };
            match arg.as_str() {
                "--dir" => dir = Some(PathBuf::from(value)),
                "--kind" => kind = Some(value.clone()),
                "--shape" => {
                    let parsed: Result<Vec<u64>, _> =
                        value.split(',').map(|p| parse_u64(p.trim())).collect();
                    shape = Some(parsed.map_err(|msg| (format!("--shape: {msg}"), 2))?);
                }
                "--leases" => leases = Some(parse_u64(value).map_err(|msg| (msg, 2))?),
                "--keys" => config.keys = parse_u64(value).map_err(|msg| (msg, 2))?,
                "--workers" => {
                    config.workers = parse_usize(value)?;
                    if config.workers == 0 {
                        return fail("--workers must be at least 1");
                    }
                }
                "--seed" => config.seed = parse_u64(value).map_err(|msg| (msg, 2))?,
                "--key-len" => config.key_len = parse_usize(value)?,
                other => return fail(format!("unknown flag '{other}'\n{}", usage())),
            }
        }
        let (Some(dir), Some(kind), Some(shape), Some(leases)) = (dir, kind, shape, leases) else {
            return fail(format!(
                "'campaign plan' needs --dir, --kind, --shape and --leases\n{}",
                usage()
            ));
        };
        // Instantiating the empty dataset front-loads shape validation, so a
        // bad plan fails here rather than in the first worker.
        dispatch_kind(&kind, |d| match d {
            Dispatch::Single => SingleByteDataset::empty_with_shape(&shape).map(|_| ()),
            Dispatch::Pairs => PairDataset::empty_with_shape(&shape).map(|_| ()),
            Dispatch::LongTerm => LongTermDataset::empty_with_shape(&shape).map(|_| ()),
            Dispatch::PerTsc => PerTscDataset::empty_with_shape(&shape).map(|_| ()),
        })
        .map_err(|(msg, _)| (msg, 2))?;
        std::fs::create_dir_all(&dir).map_err(|e| (format!("{}: {e}", dir.display()), 1))?;
        let spec = CampaignSpec {
            kind,
            shape,
            config,
        };
        let manifest = match CampaignManifest::plan(dir.join(MANIFEST_NAME), spec, leases) {
            Ok(m) => m,
            Err(DatasetError::InvalidConfig(msg)) => return fail(msg),
            Err(e) => return runtime(e),
        };
        eprintln!(
            "repro: campaign {}: planned {} lease(s) over {} worker(s), {} keys total",
            manifest.path().display(),
            manifest.leases.len(),
            manifest.spec.config.workers,
            manifest.spec.config.keys
        );
        Ok(())
    }

    // -------------------------------------------------------------- worker

    /// Writes one protocol event as a flushed stdout line (the coordinator
    /// reads line-by-line, so partial lines must never be visible).
    fn emit(event: &WorkerEvent) {
        let mut out = std::io::stdout().lock();
        let _ = out.write_all(event.to_line().as_bytes());
        let _ = out.flush();
    }

    /// Generates (or resumes) one lease's shard, emitting a heartbeat per
    /// checkpoint. The shard file existing means a previous holder of this
    /// lease checkpointed some work; resuming it is always correct because
    /// lease content is deterministic in `(seed, worker index)`.
    fn run_lease<D: StorableDataset>(
        dir: &Path,
        spec: &CampaignSpec,
        id: u64,
        worker_lo: u64,
        worker_hi: u64,
        shard: &str,
        opts: &GenerateOptions,
    ) -> Result<GenerateStatus, DatasetError> {
        let path = dir.join(shard);
        let keys_total: u64 = (worker_lo..worker_hi)
            .map(|w| spec.config.keys_for_worker(w))
            .sum();
        let mut progress = |done: u64, _total: u64| {
            emit(&WorkerEvent::Heartbeat {
                id,
                keys_done: done,
                keys_total,
            });
        };
        if path.exists() {
            resume_shard::<D>(&path, opts, None, &mut progress)
        } else {
            let empty = D::empty_with_shape(&spec.shape)?;
            let shard_spec = ShardSpec::workers(spec.config, worker_lo, worker_hi);
            generate_shard(&path, empty, &shard_spec, opts, None, &mut progress)
        }
    }

    fn worker(args: &[String]) -> CliResult<()> {
        let mut dir: Option<PathBuf> = None;
        let mut checkpoint_keys: Option<u64> = None;
        let mut fail_after_keys: Option<u64> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2))?;
            match arg.as_str() {
                "--dir" => dir = Some(PathBuf::from(value)),
                "--checkpoint-keys" => {
                    checkpoint_keys = Some(parse_u64(value).map_err(|msg| (msg, 2))?)
                }
                "--fail-after-keys" => {
                    fail_after_keys = Some(parse_u64(value).map_err(|msg| (msg, 2))?)
                }
                other => return fail(format!("unknown flag '{other}'\n{}", usage())),
            }
        }
        let Some(dir) = dir else {
            return fail(format!("'campaign worker' needs --dir\n{}", usage()));
        };
        // The manifest is read once, for the spec; lease state is owned by
        // the coordinator (which rewrites the file) and arrives over stdin.
        let manifest = match CampaignManifest::load(dir.join(MANIFEST_NAME)) {
            Ok(m) => m,
            Err(e) => return runtime(e),
        };
        let spec = manifest.spec.clone();
        drop(manifest);
        emit(&WorkerEvent::Ready {
            worker: format!("pid-{}", std::process::id()),
        });
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| (format!("campaign worker stdin: {e}"), 1))?;
            if line.trim().is_empty() {
                continue;
            }
            let cmd = WorkerCommand::parse(&line).map_err(|e| (e.to_string(), 1))?;
            let (id, worker_lo, worker_hi, shard) = match cmd {
                WorkerCommand::Shutdown => return Ok(()),
                WorkerCommand::Lease {
                    id,
                    worker_lo,
                    worker_hi,
                    shard,
                } => (id, worker_lo, worker_hi, shard),
            };
            emit(&WorkerEvent::Started { id });
            let mut opts = GenerateOptions::default();
            if let Some(n) = checkpoint_keys {
                opts.checkpoint_keys = n;
            }
            // Crash injection: checkpoint N keys, then die like a killed
            // process — abnormal exit, no Complete/Failed event. Applied to
            // at most one lease so the respawned replacement finishes it.
            opts.stop_after_keys = fail_after_keys.take();
            let injected_stop = opts.stop_after_keys.is_some();
            let status = dispatch_kind(&spec.kind, |d| match d {
                Dispatch::Single => run_lease::<SingleByteDataset>(
                    &dir, &spec, id, worker_lo, worker_hi, &shard, &opts,
                ),
                Dispatch::Pairs => {
                    run_lease::<PairDataset>(&dir, &spec, id, worker_lo, worker_hi, &shard, &opts)
                }
                Dispatch::LongTerm => run_lease::<LongTermDataset>(
                    &dir, &spec, id, worker_lo, worker_hi, &shard, &opts,
                ),
                Dispatch::PerTsc => {
                    run_lease::<PerTscDataset>(&dir, &spec, id, worker_lo, worker_hi, &shard, &opts)
                }
            });
            match status {
                Ok(GenerateStatus::Complete) => emit(&WorkerEvent::Complete { id }),
                Ok(GenerateStatus::Stopped) => {
                    debug_assert!(injected_stop, "stop_after_keys is only set by injection");
                    eprintln!(
                        "repro: campaign worker pid-{}: injected failure on lease {id}",
                        std::process::id()
                    );
                    std::process::exit(3);
                }
                Err((error, _)) => emit(&WorkerEvent::Failed { id, error }),
            }
        }
        // Stdin EOF without a shutdown command: the coordinator is gone.
        Ok(())
    }

    // --------------------------------------------------------- coordinator

    /// Everything `campaign run` needs to know about one spawned worker.
    struct WorkerProc {
        child: std::process::Child,
        stdin: Option<std::process::ChildStdin>,
        /// Manifest owner string, learned from the worker's Ready event.
        owner: Option<String>,
        /// Ready (or finished a lease) with nothing grantable at the time.
        idle: bool,
        alive: bool,
    }

    struct RunArgs {
        dir: PathBuf,
        out: PathBuf,
        procs: usize,
        checkpoint_keys: Option<u64>,
        heartbeat_timeout_ms: u64,
        max_respawns: u64,
        max_attempts: u64,
        fan_in: Option<usize>,
        compress: bool,
        fail_first_after_keys: Option<u64>,
    }

    fn parse_run(args: &[String]) -> CliResult<RunArgs> {
        let mut parsed = RunArgs {
            dir: PathBuf::new(),
            out: PathBuf::new(),
            procs: 2,
            checkpoint_keys: None,
            heartbeat_timeout_ms: 60_000,
            max_respawns: 4,
            max_attempts: 5,
            fan_in: None,
            compress: false,
            fail_first_after_keys: None,
        };
        let mut dir = None;
        let mut out = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let value = match arg.as_str() {
                "--help" | "-h" => return Err((usage(), 0)),
                "--compress" => {
                    parsed.compress = true;
                    continue;
                }
                _ => it
                    .next()
                    .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2))?,
            };
            let int = || parse_u64(value).map_err(|msg| (msg, 2u8));
            match arg.as_str() {
                "--dir" => dir = Some(PathBuf::from(value)),
                "--out" => out = Some(PathBuf::from(value)),
                "--procs" => {
                    parsed.procs = parse_usize(value)?;
                    if parsed.procs == 0 {
                        return fail("--procs must be at least 1");
                    }
                }
                "--checkpoint-keys" => parsed.checkpoint_keys = Some(int()?),
                "--heartbeat-timeout-ms" => parsed.heartbeat_timeout_ms = int()?,
                "--max-respawns" => parsed.max_respawns = int()?,
                "--max-attempts" => {
                    parsed.max_attempts = int()?;
                    if parsed.max_attempts == 0 {
                        return fail("--max-attempts must be at least 1");
                    }
                }
                "--fan-in" => {
                    let n = parse_usize(value)?;
                    if n < 2 {
                        return fail("--fan-in must be at least 2");
                    }
                    parsed.fan_in = Some(n);
                }
                "--fail-first-after-keys" => parsed.fail_first_after_keys = Some(int()?),
                other => return fail(format!("unknown flag '{other}'\n{}", usage())),
            }
        }
        let (Some(dir), Some(out)) = (dir, out) else {
            return fail(format!("'campaign run' needs --dir and --out\n{}", usage()));
        };
        parsed.dir = dir;
        parsed.out = out;
        Ok(parsed)
    }

    fn spawn_worker(
        args: &RunArgs,
        fail_after_keys: Option<u64>,
        idx: usize,
        tx: &mpsc::Sender<(usize, Option<String>)>,
    ) -> CliResult<WorkerProc> {
        let exe = std::env::current_exe()
            .map_err(|e| (format!("cannot locate the repro binary: {e}"), 1))?;
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("campaign")
            .arg("worker")
            .arg("--dir")
            .arg(&args.dir);
        if let Some(n) = args.checkpoint_keys {
            cmd.arg("--checkpoint-keys").arg(n.to_string());
        }
        if let Some(n) = fail_after_keys {
            cmd.arg("--fail-after-keys").arg(n.to_string());
        }
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped());
        let mut child = cmd
            .spawn()
            .map_err(|e| (format!("cannot spawn campaign worker: {e}"), 1))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        // One reader thread per worker: lines fan into the coordinator's
        // single channel, and the trailing None is the EOF (= death) signal.
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send((idx, Some(line))).is_err() {
                    return;
                }
            }
            let _ = tx.send((idx, None));
        });
        Ok(WorkerProc {
            child,
            stdin: Some(stdin),
            owner: None,
            idle: false,
            alive: true,
        })
    }

    /// Aborts the campaign once any incomplete lease has burned through its
    /// grant budget — without this a deterministic failure (bad disk, bad
    /// shape) would re-lease forever.
    fn check_attempts(manifest: &CampaignManifest, max_attempts: u64) -> CliResult<()> {
        for lease in &manifest.leases {
            if lease.state.is_grantable() && lease.attempts >= max_attempts {
                return Err((
                    format!(
                        "campaign aborted: lease {} (workers {}..{}) failed {} time(s)",
                        lease.id, lease.worker_lo, lease.worker_hi, lease.attempts
                    ),
                    1,
                ));
            }
        }
        Ok(())
    }

    /// Grants the next lease to worker `widx` or, when nothing is grantable,
    /// parks it idle (it will be fed when a lease expires) or shuts it down
    /// (when the campaign is complete).
    fn grant_or_park(
        manifest: &mut CampaignManifest,
        worker: &mut WorkerProc,
        now_ms: u64,
    ) -> CliResult<()> {
        let Some(owner) = worker.owner.clone() else {
            return Ok(());
        };
        if let Some(lease) = manifest.grant_next(&owner, now_ms).or_else(runtime)? {
            eprintln!(
                "repro: campaign: lease {} (workers {}..{}) -> {} (attempt {})",
                lease.id, lease.worker_lo, lease.worker_hi, owner, lease.attempts
            );
            let cmd = WorkerCommand::Lease {
                id: lease.id,
                worker_lo: lease.worker_lo,
                worker_hi: lease.worker_hi,
                shard: lease.shard.clone(),
            };
            worker.idle = false;
            if let Some(stdin) = &mut worker.stdin {
                if stdin.write_all(cmd.to_line().as_bytes()).is_err() {
                    // The worker died between Ready and now; its reader
                    // thread's EOF signal will expire the lease we just
                    // granted, so nothing to unwind here.
                    worker.alive = false;
                }
            }
        } else if manifest.all_complete() {
            shut_down(worker);
        } else {
            worker.idle = true;
        }
        Ok(())
    }

    fn shut_down(worker: &mut WorkerProc) {
        if let Some(mut stdin) = worker.stdin.take() {
            let _ = stdin.write_all(WorkerCommand::Shutdown.to_line().as_bytes());
            // Dropping stdin closes the pipe, so even a worker that missed
            // the command exits on EOF.
        }
        worker.idle = false;
    }

    fn coordinate(args: &[String]) -> CliResult<()> {
        let args = parse_run(args)?;
        let mut manifest = match CampaignManifest::load(args.dir.join(MANIFEST_NAME)) {
            Ok(m) => m,
            Err(e) => return runtime(e),
        };
        if !manifest.all_complete() {
            drive_workers(&args, &mut manifest)?;
        }
        merge_campaign(&args, &manifest)
    }

    fn drive_workers(args: &RunArgs, manifest: &mut CampaignManifest) -> CliResult<()> {
        let start = Instant::now();
        let now_ms = move || start.elapsed().as_millis() as u64;
        let (tx, rx) = mpsc::channel::<(usize, Option<String>)>();
        let mut workers: Vec<WorkerProc> = Vec::new();
        for i in 0..args.procs {
            let inject = if i == 0 {
                args.fail_first_after_keys
            } else {
                None
            };
            workers.push(spawn_worker(args, inject, i, &tx)?);
        }
        let mut respawns_left = args.max_respawns;

        let counts = manifest.state_counts();
        eprintln!(
            "repro: campaign {}: {} lease(s) ({} complete), {} worker process(es)",
            args.dir.display(),
            manifest.leases.len(),
            counts[3],
            args.procs
        );

        while !manifest.all_complete() {
            let message = match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(message) => Some(message),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(("campaign: every worker channel closed".to_string(), 1));
                }
            };
            match message {
                None => {
                    // No traffic: check for hung workers that stopped
                    // heartbeating without dying.
                    let expired = manifest
                        .expire_stale(args.heartbeat_timeout_ms, now_ms())
                        .or_else(runtime)?;
                    if !expired.is_empty() {
                        eprintln!(
                            "repro: campaign: lease(s) {expired:?} expired (heartbeat timeout)"
                        );
                        check_attempts(manifest, args.max_attempts)?;
                    }
                }
                Some((widx, None)) => {
                    // EOF: the worker exited. Expected after a shutdown;
                    // otherwise it crashed and its lease goes back in the
                    // pool.
                    workers[widx].alive = false;
                    workers[widx].stdin = None;
                    workers[widx].idle = false;
                    let _ = workers[widx].child.wait();
                    if let Some(owner) = workers[widx].owner.take() {
                        let expired = manifest.expire_owner(&owner).or_else(runtime)?;
                        if !expired.is_empty() {
                            eprintln!(
                                "repro: campaign: worker {owner} died; re-leasing {expired:?}"
                            );
                            check_attempts(manifest, args.max_attempts)?;
                            if !manifest.all_complete() && respawns_left > 0 {
                                respawns_left -= 1;
                                let idx = workers.len();
                                workers.push(spawn_worker(args, None, idx, &tx)?);
                            }
                        }
                    }
                    if !manifest.all_complete() && workers.iter().all(|w| !w.alive) {
                        if respawns_left == 0 {
                            return Err((
                                "campaign stalled: every worker died and the respawn budget \
                                 is spent; re-run `repro campaign run` to continue from the \
                                 manifest"
                                    .to_string(),
                                1,
                            ));
                        }
                        respawns_left -= 1;
                        let idx = workers.len();
                        workers.push(spawn_worker(args, None, idx, &tx)?);
                    }
                }
                Some((widx, Some(line))) => {
                    let event = match WorkerEvent::parse(&line) {
                        Ok(event) => event,
                        Err(e) => {
                            eprintln!("repro: campaign: ignoring malformed worker line: {e}");
                            continue;
                        }
                    };
                    let owner = workers[widx].owner.clone();
                    match event {
                        WorkerEvent::Ready { worker } => {
                            workers[widx].owner = Some(worker);
                            grant_or_park(manifest, &mut workers[widx], now_ms())?;
                        }
                        WorkerEvent::Started { id } => {
                            if let Some(owner) = &owner {
                                let keys_done = manifest
                                    .leases
                                    .iter()
                                    .find(|l| l.id == id)
                                    .map_or(0, |l| l.keys_done);
                                manifest
                                    .heartbeat(id, owner, keys_done, now_ms())
                                    .or_else(runtime)?;
                            }
                        }
                        WorkerEvent::Heartbeat { id, keys_done, .. } => {
                            if let Some(owner) = &owner {
                                manifest
                                    .heartbeat(id, owner, keys_done, now_ms())
                                    .or_else(runtime)?;
                            }
                        }
                        WorkerEvent::Complete { id } => {
                            let accepted = match &owner {
                                Some(owner) => manifest.complete(id, owner).or_else(runtime)?,
                                None => false,
                            };
                            if accepted {
                                let counts = manifest.state_counts();
                                eprintln!(
                                    "repro: campaign: lease {id} complete \
                                     ({}/{} lease(s) done)",
                                    counts[3],
                                    manifest.leases.len()
                                );
                                grant_or_park(manifest, &mut workers[widx], now_ms())?;
                            }
                        }
                        WorkerEvent::Failed { id, error } => {
                            eprintln!("repro: campaign: lease {id} failed: {error}");
                            if let Some(owner) = &owner {
                                manifest.expire_owner(owner).or_else(runtime)?;
                            }
                            check_attempts(manifest, args.max_attempts)?;
                            grant_or_park(manifest, &mut workers[widx], now_ms())?;
                        }
                    }
                    // Expired leases (timeout, crash, failure) are handed to
                    // whichever workers are parked idle.
                    if manifest.leases.iter().any(|l| l.state.is_grantable()) {
                        for worker in workers.iter_mut().filter(|w| w.alive && w.idle) {
                            grant_or_park(manifest, worker, now_ms())?;
                        }
                    }
                }
            }
        }

        for worker in workers.iter_mut().filter(|w| w.alive) {
            shut_down(worker);
        }
        for worker in &mut workers {
            let _ = worker.child.wait();
        }
        Ok(())
    }

    fn merge_campaign(args: &RunArgs, manifest: &CampaignManifest) -> CliResult<()> {
        let shards: Vec<PathBuf> = manifest
            .leases
            .iter()
            .map(|l| manifest.shard_path(l))
            .collect();
        let encoding = if args.compress {
            CellEncoding::DeltaVarint
        } else {
            CellEncoding::Raw
        };
        if let [only] = shards.as_slice() {
            // A one-lease campaign's shard IS the full table already.
            std::fs::copy(only, &args.out)
                .map_err(|e| (format!("{}: {e}", args.out.display()), 1))?;
        } else {
            let mut options = MergeOptions {
                encoding,
                ..MergeOptions::default()
            };
            if let Some(n) = args.fan_in {
                options.fan_in = n;
            }
            let refs: Vec<&Path> = shards.iter().map(PathBuf::as_path).collect();
            dispatch_kind(&manifest.spec.kind, |d| match d {
                Dispatch::Single => {
                    merge_shards_tiered::<SingleByteDataset>(&refs, &args.out, &options)
                }
                Dispatch::Pairs => merge_shards_tiered::<PairDataset>(&refs, &args.out, &options),
                Dispatch::LongTerm => {
                    merge_shards_tiered::<LongTermDataset>(&refs, &args.out, &options)
                }
                Dispatch::PerTsc => {
                    merge_shards_tiered::<PerTscDataset>(&refs, &args.out, &options)
                }
            })?;
        }
        eprintln!(
            "repro: campaign {}: merged {} lease shard(s) into {} ({} encoding)",
            args.dir.display(),
            shards.len(),
            args.out.display(),
            encoding.name()
        );
        Ok(())
    }

    // -------------------------------------------------------------- status

    fn status(args: &[String]) -> CliResult<()> {
        let mut dir: Option<PathBuf> = None;
        let mut json = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => json = true,
                "--help" | "-h" => return Err((usage(), 0)),
                "--dir" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ("--dir requires a value".to_string(), 2))?;
                    dir = Some(PathBuf::from(value));
                }
                other => return fail(format!("unknown flag '{other}'\n{}", usage())),
            }
        }
        let Some(dir) = dir else {
            return fail(format!("'campaign status' needs --dir\n{}", usage()));
        };
        let path = dir.join(MANIFEST_NAME);
        let manifest = match CampaignManifest::load(&path) {
            Ok(m) => m,
            Err(e) => return runtime(e),
        };
        if json {
            // The manifest file is already the canonical JSON document;
            // loading it above validated it.
            let text = std::fs::read_to_string(&path)
                .map_err(|e| (format!("{}: {e}", path.display()), 1))?;
            print!("{text}");
            return Ok(());
        }
        let spec = &manifest.spec;
        println!("campaign:  {}", path.display());
        println!("kind:      {}  shape {:?}", spec.kind, spec.shape);
        println!(
            "config:    keys={} workers={} seed={:#x} key_len={}",
            spec.config.keys, spec.config.workers, spec.config.seed, spec.config.key_len
        );
        let counts = manifest.state_counts();
        println!(
            "leases:    {} (pending {}, granted {}, running {}, complete {}, expired {})",
            manifest.leases.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4]
        );
        println!(
            "progress:  {}/{} keys{}",
            manifest.keys_done(),
            spec.config.keys,
            if manifest.all_complete() {
                " (ready to merge)"
            } else {
                ""
            }
        );
        for lease in &manifest.leases {
            println!("  {}", render_lease(&manifest, lease));
        }
        Ok(())
    }

    fn render_lease(manifest: &CampaignManifest, lease: &Lease) -> String {
        format!(
            "lease {:>3}  workers {:>4}..{:<4}  {:8}  attempts {}  {}/{} keys  {}",
            lease.id,
            lease.worker_lo,
            lease.worker_hi,
            lease.state.name(),
            lease.attempts,
            if lease.state.name() == "complete" {
                manifest.lease_keys_total(lease)
            } else {
                lease.keys_done
            },
            manifest.lease_keys_total(lease),
            lease.shard
        )
    }
}

/// The `repro bench` subcommand: a fixed-seed, quick-scale performance smoke
/// run plus the CI regression gate.
///
/// Each measurement replays the workload of the same-named criterion bench
/// (`bench/benches/`), so the numbers are directly comparable with the
/// committed `BENCH_*.json` trajectory. `--compare FILE` checks every
/// measured bench that also appears in `FILE` and fails (exit 1) when one is
/// more than `--tolerance` percent slower; the text output is a markdown
/// table suitable for a CI job summary.
mod bench_cli {
    use std::time::Instant;

    use plaintext_recovery::{
        charset::Charset,
        likelihood::PairLikelihoods,
        viterbi::{list_viterbi, ViterbiConfig},
    };
    use rc4_accel::{AutoBatch, KeystreamBatch};
    use rc4_attacks::experiments::fig8::{run as fig8_run, Fig8Config, TkipTrafficModel};
    use rc4_stats::{
        single::SingleByteDataset, streaming::StreamingCounts, worker, GenerationConfig,
    };
    use rc4_store::codec::{DeltaVarintDecoder, DeltaVarintEncoder};

    type CliResult<T> = Result<T, (String, u8)>;

    /// Default regression tolerance in percent: generous enough for
    /// run-to-run noise on shared CI runners, tight enough to catch a real
    /// hot-path regression (the batch engine is worth ~300%).
    const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

    /// Wall-clock budget per measurement; the whole smoke mode stays under
    /// ~10 s so it can gate every CI run. `REPRO_BENCH_FAST=1` shrinks the
    /// budget further for the CLI contract tests, where only the schema and
    /// gate logic matter, not measurement quality.
    const TARGET_MS_PER_BENCH: u64 = 300;

    fn target_ms_per_bench() -> u64 {
        if std::env::var_os("REPRO_BENCH_FAST").is_some() {
            40
        } else {
            TARGET_MS_PER_BENCH
        }
    }

    fn usage() -> String {
        "usage: repro bench [--json] [--save-json FILE] [--compare BENCH_FILE|latest] [--tolerance PCT] [--engine NAME]\n\
         \n\
         Runs the quick perf smoke suite (fixed seeds) and prints one entry per\n\
         bench: ns per iteration plus throughput where meaningful. --engine\n\
         forces the batch engine tier (same choices as the RC4_ACCEL_FORCE\n\
         environment variable: auto, avx512, avx2, neon, portable); the\n\
         resolved engine is reported in the summary and the JSON. With\n\
         --compare, entries also present in BENCH_FILE are checked and the run\n\
         fails (exit 1) if any is more than PCT percent slower (default 25).\n\
         `--compare latest` resolves the highest-numbered BENCH_pr<N>.json in\n\
         the current directory (falling back to BENCH_baseline.json in a fresh\n\
         checkout), so CI never hardcodes a trajectory filename.\n\
         --save-json additionally writes the JSON report of the SAME\n\
         measurement pass to FILE (so a CI job gets the human summary, the\n\
         machine artifact and the gate from one run)."
            .to_string()
    }

    /// Resolves `--compare latest`: the `BENCH_pr<N>.json` with the highest
    /// `N` in the current directory, falling back to `BENCH_baseline.json`
    /// (with a note) when no PR file exists yet. Numeric comparison on
    /// purpose — lexicographic order would rank `BENCH_pr9.json` above
    /// `BENCH_pr10.json`.
    fn resolve_latest_bench_file() -> CliResult<String> {
        let mut best: Option<(u64, String)> = None;
        let entries = std::fs::read_dir(".")
            .map_err(|e| (format!("cannot scan the current directory: {e}"), 2))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(number) = name
                .strip_prefix("BENCH_pr")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            let newer = match &best {
                None => true,
                Some((n, _)) => number > *n,
            };
            if newer {
                best = Some((number, name.to_string()));
            }
        }
        if let Some((_, name)) = best {
            return Ok(name);
        }
        // A fresh checkout carries only the baseline — gate against it rather
        // than erroring out before the first BENCH_pr<N>.json ever lands.
        if std::path::Path::new("BENCH_baseline.json").is_file() {
            eprintln!(
                "repro: --compare latest: no BENCH_pr<N>.json found, falling back to BENCH_baseline.json"
            );
            return Ok("BENCH_baseline.json".to_string());
        }
        Err((
            "--compare latest: no BENCH_pr<N>.json or BENCH_baseline.json found in the current directory"
                .to_string(),
            2,
        ))
    }

    struct Measurement {
        name: &'static str,
        ns_per_iter: f64,
        bytes_per_iter: Option<u64>,
    }

    /// Times `f`: one warm-up call, then enough iterations to fill the time
    /// budget, reporting the MINIMUM — the least noise-contaminated sample,
    /// which is what a regression gate should compare.
    fn time_min<F: FnMut()>(mut f: F) -> f64 {
        f();
        let start = Instant::now();
        f();
        let first_ns = start.elapsed().as_nanos().max(1) as u64;
        let iters = (target_ms_per_bench() * 1_000_000 / first_ns).clamp(3, 400);
        let mut best = first_ns as f64;
        for _ in 0..iters {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_nanos() as f64);
        }
        best
    }

    /// Flat lane-major buffer of `n` distinct 16-byte keys (fixed pattern, so
    /// every run measures the same work).
    fn smoke_keys(n: usize) -> Vec<u8> {
        let mut keys = vec![0u8; n * 16];
        for (k, key) in keys.chunks_exact_mut(16).enumerate() {
            for (b, slot) in key.iter_mut().enumerate() {
                *slot = (0x37 + 11 * k + 3 * b) as u8;
            }
        }
        keys
    }

    /// Schedules `keys` through `engine` in lane-sized batches, generating
    /// `per_key` bytes per key into `out` — the dataset workers' hot-loop
    /// shape.
    fn batch_generate(engine: &mut AutoBatch, keys: &[u8], out: &mut [u8], per_key: usize) {
        let lanes = engine.lanes();
        let total = keys.len() / 16;
        let mut done = 0usize;
        while done < total {
            let n = (total - done).min(lanes);
            engine
                .schedule(&keys[done * 16..(done + n) * 16], 16)
                .expect("16-byte keys are valid");
            engine.fill(&mut out[done * per_key..(done + n) * per_key], per_key);
            done += n;
        }
    }

    fn measure_all() -> Vec<Measurement> {
        let mut results = Vec::new();

        // Scalar PRGA bulk fill — same workload as rc4_throughput's
        // `rc4_keystream/65536`.
        let mut prga = rc4::Prga::new(b"benchmark key 16").expect("valid key");
        let mut buf = vec![0u8; 65536];
        results.push(Measurement {
            name: "rc4_keystream/65536",
            ns_per_iter: time_min(|| prga.fill(std::hint::black_box(&mut buf))),
            bytes_per_iter: Some(65536),
        });

        // Batched engine, PRGA-bound regime: 16 fresh keys x 4 KiB each.
        let mut engine = AutoBatch::new();
        let keys = smoke_keys(16);
        let mut out = vec![0u8; 16 * 4096];
        results.push(Measurement {
            name: "rc4_batch_keystream/16x4096",
            ns_per_iter: time_min(|| {
                batch_generate(
                    &mut engine,
                    std::hint::black_box(&keys),
                    std::hint::black_box(&mut out),
                    4096,
                )
            }),
            bytes_per_iter: Some(16 * 4096),
        });

        // Batched engine, KSA-bound regime: 256 keys x 68 B (the per-TSC
        // dataset shape, the dominant generation workload).
        let keys = smoke_keys(256);
        let mut out = vec![0u8; 256 * 68];
        results.push(Measurement {
            name: "rc4_batch_rekey/256x68",
            ns_per_iter: time_min(|| {
                batch_generate(
                    &mut engine,
                    std::hint::black_box(&keys),
                    std::hint::black_box(&mut out),
                    68,
                )
            }),
            bytes_per_iter: Some(256 * 68),
        });

        // The same rekey shape pinned to each engine tier the host can
        // instantiate — the dispatch-order proof (avx512 > avx2 > portable)
        // and the rows the engine-force contract tests assert on. Names are
        // per-tier so `--compare` only gates tiers both hosts can measure.
        for name in rc4_accel::available_engines() {
            let tier = rc4_accel::Engine::parse(name).expect("listed engines parse");
            let mut forced = AutoBatch::with_engine(tier).expect("listed engines construct");
            let bench_name: &'static str = match name {
                "avx512" => "rc4_batch_rekey/256x68/avx512",
                "avx2" => "rc4_batch_rekey/256x68/avx2",
                "neon" => "rc4_batch_rekey/256x68/neon",
                _ => "rc4_batch_rekey/256x68/portable",
            };
            results.push(Measurement {
                name: bench_name,
                ns_per_iter: time_min(|| {
                    batch_generate(
                        &mut forced,
                        std::hint::black_box(&keys),
                        std::hint::black_box(&mut out),
                        68,
                    )
                }),
                bytes_per_iter: Some(256 * 68),
            });
        }

        // End-to-end dataset generation through the worker pool.
        let config = GenerationConfig::with_keys(1 << 15).seed(0xBE_EF);
        results.push(Measurement {
            name: "dataset_generate/single_32768x64",
            ns_per_iter: time_min(|| {
                let mut ds = SingleByteDataset::new(64);
                worker::generate(std::hint::black_box(&mut ds), &config).expect("valid config");
            }),
            bytes_per_iter: Some((1u64 << 15) * 64),
        });

        // Fig. 8 quick sweep — same workload as fig8_fig9_tkip's
        // `quick_sweep` criterion bench.
        let fig8_config = Fig8Config {
            capture_counts: vec![1 << 11],
            trials: 2,
            max_candidates: 1 << 10,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.8 },
            ..Fig8Config::quick()
        };
        results.push(Measurement {
            name: "fig8_tkip_recovery/quick_sweep",
            ns_per_iter: time_min(|| {
                fig8_run(std::hint::black_box(&fig8_config)).expect("fig8 quick config runs");
            }),
            bytes_per_iter: None,
        });

        // Recovery path, likelihood side: the paper's optimized Eq.-15 pair
        // scoring (8 FM cells against all 65536 candidate pairs) — the inner
        // loop of every fig7/fig10/TLS-cookie analysis. Gating this keeps
        // the analysis side as protected as the generation side.
        let counts: Vec<u64> = (0..65536u64).map(|i| (i * 2654435761) % 977).collect();
        let cells: Vec<(u8, u8, f64)> = rc4_biases::fm::fm_biases_at(257)
            .into_iter()
            .map(|b| (b.first, b.second, b.probability))
            .collect();
        let total: u64 = counts.iter().sum();
        results.push(Measurement {
            name: "recovery_likelihood/fm_sparse_65536",
            ns_per_iter: time_min(|| {
                PairLikelihoods::from_counts_sparse(
                    std::hint::black_box(&counts),
                    &cells,
                    1.0 / 65536.0,
                    total,
                )
                .expect("well-formed inputs");
            }),
            bytes_per_iter: None,
        });

        // Dense Eq.-13 pair scoring (the ablation baseline for the sparse
        // path) over a sparse count table: 512 observed cells against all
        // 65536 candidate pairs, running through the blocked xor-permute
        // scoring kernel in rc4-accel.
        let mut dense_counts = vec![0u64; 65536];
        for k in 0..512usize {
            dense_counts[(k * 8191) % 65536] = 1 + (k as u64 % 7);
        }
        let uniform_probs = vec![1.0 / 65536.0; 65536];
        results.push(Measurement {
            name: "recovery_likelihood/dense_512c_65536",
            ns_per_iter: time_min(|| {
                PairLikelihoods::from_counts_dense(
                    std::hint::black_box(&dense_counts),
                    &uniform_probs,
                )
                .expect("well-formed inputs");
            }),
            bytes_per_iter: None,
        });

        // Recovery path, candidate side: a list-Viterbi decode of a 6-byte
        // span over the base64 cookie alphabet, 256 candidates per step —
        // the fig10 / tls-cookie beam shape at quick scale.
        let transitions: Vec<PairLikelihoods> = (0..7u64)
            .map(|t| {
                let mut log = vec![0.0f64; 65536];
                for (i, slot) in log.iter_mut().enumerate() {
                    let mut x = (t << 32) | i as u64;
                    x ^= x >> 33;
                    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                    *slot = ((x >> 40) % 4096) as f64 / 512.0;
                }
                PairLikelihoods::from_log_values(log).expect("65536 values")
            })
            .collect();
        let viterbi_config = ViterbiConfig {
            first_known: b'=',
            last_known: b';',
            candidates: 256,
            charset: Charset::base64(),
        };
        results.push(Measurement {
            name: "recovery_viterbi/base64_6x256",
            ns_per_iter: time_min(|| {
                list_viterbi(std::hint::black_box(&transitions), &viterbi_config)
                    .expect("well-formed decode");
            }),
            bytes_per_iter: None,
        });

        // Streaming path: one ingest-and-re-score step of the
        // `--until-confident` loop — absorb a 65536-cell count batch into the
        // running table, re-score it through the sparse FM likelihood and
        // extract the stopping margin. This is the per-batch overhead the
        // streaming experiments add over the fixed-grid drivers.
        let batch: Vec<u64> = (0..65536u64).map(|i| (i * 2246822519) % 613).collect();
        let mut acc = StreamingCounts::new(65536).expect("non-zero cells");
        results.push(Measurement {
            name: "streaming_ingest/absorb_rescore_65536",
            ns_per_iter: time_min(|| {
                acc.absorb(std::hint::black_box(&batch)).expect("shape ok");
                let scored = PairLikelihoods::from_counts_sparse(
                    acc.counts(),
                    &cells,
                    1.0 / 65536.0,
                    acc.total(),
                )
                .expect("well-formed inputs");
                std::hint::black_box(scored.margin());
            }),
            bytes_per_iter: Some(65536 * 8),
        });

        // Shard codec: delta+varint (v2) encode/decode of a 65536-cell count
        // window — the compressed shard format's hot loops. bytes_per_iter
        // is the *decoded* cell volume, so the throughput column is directly
        // comparable with the raw-cell I/O the codec replaces.
        let cells: Vec<u64> = (0..65536u64)
            .map(|i| 500 + (i.wrapping_mul(2654435761) % 997))
            .collect();
        let mut encoded: Vec<u8> = Vec::with_capacity(cells.len() * 2);
        results.push(Measurement {
            name: "store_codec/delta_varint_encode_65536",
            ns_per_iter: time_min(|| {
                encoded.clear();
                let mut encoder = DeltaVarintEncoder::new();
                for &cell in std::hint::black_box(&cells) {
                    encoder.push(cell, &mut encoded);
                }
            }),
            bytes_per_iter: Some(65536 * 8),
        });
        eprintln!(
            "repro: bench: delta+varint packs 65536 cells into {} bytes \
             ({:.2}x smaller than raw)",
            encoded.len(),
            (65536.0 * 8.0) / encoded.len().max(1) as f64
        );
        results.push(Measurement {
            name: "store_codec/delta_varint_decode_65536",
            ns_per_iter: time_min(|| {
                let mut decoder = DeltaVarintDecoder::new();
                let mut offset = 0usize;
                let mut sum = 0u64;
                let encoded = std::hint::black_box(&encoded);
                while offset < encoded.len() {
                    let (cell, used) = decoder.next(&encoded[offset..]).expect("valid stream");
                    sum = sum.wrapping_add(cell);
                    offset += used;
                }
                std::hint::black_box(sum);
            }),
            bytes_per_iter: Some(65536 * 8),
        });

        results
    }

    /// One committed-vs-measured comparison row.
    struct CompareRow {
        name: String,
        committed_ns: f64,
        measured_ns: f64,
        delta_pct: f64,
        regressed: bool,
    }

    fn load_committed(path: &str) -> CliResult<Vec<(String, f64)>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| (format!("cannot read bench file {path}: {e}"), 2))?;
        let value: serde::Value = serde_json::from_str(&text)
            .map_err(|e| (format!("bench file {path} is not valid JSON: {e}"), 2))?;
        let Ok(serde::Value::Array(benches)) = value.field("benches") else {
            return Err((format!("bench file {path} has no `benches` array"), 2));
        };
        let mut committed = Vec::with_capacity(benches.len());
        for entry in benches {
            let Ok(serde::Value::Str(name)) = entry.field("bench") else {
                continue;
            };
            let ns = match entry.field("ns_per_iter") {
                Ok(serde::Value::Float(ns)) => *ns,
                Ok(serde::Value::UInt(ns)) => *ns as f64,
                _ => continue,
            };
            committed.push((name.clone(), ns));
        }
        Ok(committed)
    }

    fn compare(
        measurements: &[Measurement],
        committed: &[(String, f64)],
        tolerance_pct: f64,
    ) -> Vec<CompareRow> {
        measurements
            .iter()
            .filter_map(|m| {
                let (_, committed_ns) = committed.iter().find(|(name, _)| name == m.name)?;
                let delta_pct = (m.ns_per_iter / committed_ns - 1.0) * 100.0;
                Some(CompareRow {
                    name: m.name.to_string(),
                    committed_ns: *committed_ns,
                    measured_ns: m.ns_per_iter,
                    delta_pct,
                    regressed: delta_pct > tolerance_pct,
                })
            })
            .collect()
    }

    fn gib_per_sec(m: &Measurement) -> Option<f64> {
        m.bytes_per_iter
            .map(|b| b as f64 / m.ns_per_iter * 1e9 / (1u64 << 30) as f64)
    }

    fn render_markdown(
        measurements: &[Measurement],
        rows: &[CompareRow],
        tolerance_pct: f64,
        engine: &str,
    ) -> String {
        let mut out = format!(
            "### repro bench (perf smoke)\n\nengine: {engine}\n\n\
             | bench | ns/iter | throughput |\n|---|---:|---:|\n",
        );
        for m in measurements {
            let thrpt = gib_per_sec(m)
                .map(|g| format!("{g:.3} GiB/s"))
                .unwrap_or_else(|| "—".to_string());
            out.push_str(&format!(
                "| {} | {:.0} | {} |\n",
                m.name, m.ns_per_iter, thrpt
            ));
        }
        if !rows.is_empty() {
            out.push_str(&format!(
                "\n#### vs committed trajectory (tolerance {tolerance_pct:.0}%)\n\n\
                 | bench | committed ns | measured ns | Δ | status |\n|---|---:|---:|---:|---|\n"
            ));
            for row in rows {
                out.push_str(&format!(
                    "| {} | {:.0} | {:.0} | {:+.1}% | {} |\n",
                    row.name,
                    row.committed_ns,
                    row.measured_ns,
                    row.delta_pct,
                    if row.regressed { "REGRESSED" } else { "ok" }
                ));
            }
        }
        out
    }

    fn to_json(measurements: &[Measurement], rows: &[CompareRow], engine: &str) -> serde::Value {
        let benches: Vec<serde::Value> = measurements
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("bench".to_string(), serde::Value::Str(m.name.to_string())),
                    (
                        "ns_per_iter".to_string(),
                        serde::Value::Float(m.ns_per_iter),
                    ),
                ];
                if let Some(bytes) = m.bytes_per_iter {
                    fields.push((
                        "bytes_per_sec".to_string(),
                        serde::Value::Float(bytes as f64 / m.ns_per_iter * 1e9),
                    ));
                }
                serde::Value::Object(fields)
            })
            .collect();
        // The resolved engine rides at the top level; `load_committed` only
        // reads the `benches` array, so older gates stay compatible.
        let mut root = vec![
            ("engine".to_string(), serde::Value::Str(engine.to_string())),
            ("benches".to_string(), serde::Value::Array(benches)),
        ];
        if !rows.is_empty() {
            let compare: Vec<serde::Value> = rows
                .iter()
                .map(|row| {
                    serde::Value::Object(vec![
                        ("bench".to_string(), serde::Value::Str(row.name.clone())),
                        (
                            "committed_ns".to_string(),
                            serde::Value::Float(row.committed_ns),
                        ),
                        (
                            "measured_ns".to_string(),
                            serde::Value::Float(row.measured_ns),
                        ),
                        ("delta_pct".to_string(), serde::Value::Float(row.delta_pct)),
                        ("regressed".to_string(), serde::Value::Bool(row.regressed)),
                    ])
                })
                .collect();
            root.push(("compare".to_string(), serde::Value::Array(compare)));
        }
        serde::Value::Object(root)
    }

    pub fn run(args: &[String]) -> CliResult<()> {
        let mut json = false;
        let mut save_json: Option<String> = None;
        let mut compare_path: Option<String> = None;
        let mut tolerance_pct = DEFAULT_TOLERANCE_PCT;
        let mut engine_flag: Option<String> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err((usage(), 0)),
                "--json" => json = true,
                "--engine" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ("--engine requires a name".to_string(), 2))?;
                    engine_flag = Some(value.clone());
                }
                "--save-json" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ("--save-json requires a file".to_string(), 2))?;
                    save_json = Some(value.clone());
                }
                "--compare" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ("--compare requires a file".to_string(), 2))?;
                    compare_path = Some(value.clone());
                }
                "--tolerance" => {
                    let value = it
                        .next()
                        .ok_or_else(|| ("--tolerance requires a percentage".to_string(), 2))?;
                    tolerance_pct = value
                        .parse()
                        .map_err(|_| (format!("--tolerance expects a number, got '{value}'"), 2))?;
                }
                other => return Err((format!("unknown flag '{other}'\n{}", usage()), 2)),
            }
        }

        // `--engine NAME` is exactly the RC4_ACCEL_FORCE hook behind a flag:
        // validate the name and its availability up front (exit 2 with the
        // choice list, like any other usage error), then export the variable
        // so every engine construction — including the recovery scoring
        // kernel's dispatch — sees the same override.
        if let Some(name) = &engine_flag {
            let tier = rc4_accel::Engine::parse(name).ok_or_else(|| {
                (
                    format!(
                        "--engine {name}: unknown engine (choices: {})",
                        rc4_accel::Engine::CHOICES.join(", ")
                    ),
                    2,
                )
            })?;
            AutoBatch::with_engine(tier).map_err(|e| (format!("--engine {name}: {e}"), 2))?;
            std::env::set_var(rc4_accel::FORCE_ENV, name);
        }
        // A pre-existing RC4_ACCEL_FORCE override is validated here too so a
        // typo fails with a clean usage error instead of a panic mid-run.
        rc4_accel::Engine::from_env().map_err(|e| (e, 2))?;

        if compare_path.as_deref() == Some("latest") {
            let resolved = resolve_latest_bench_file()?;
            eprintln!("repro: --compare latest resolved to {resolved}");
            compare_path = Some(resolved);
        }
        let committed = match &compare_path {
            Some(path) => load_committed(path)?,
            None => Vec::new(),
        };
        let engine_label = AutoBatch::new().engine_name();
        eprintln!(
            "repro: bench smoke run ({engine_label} engine){}",
            compare_path
                .as_deref()
                .map(|p| format!(", gating against {p}"))
                .unwrap_or_default()
        );
        let measurements = measure_all();
        let rows = compare(&measurements, &committed, tolerance_pct);

        let json_report =
            serde_json::to_string_pretty(&to_json(&measurements, &rows, engine_label))
                .expect("bench report serializes");
        if let Some(path) = &save_json {
            std::fs::write(path, format!("{json_report}\n"))
                .map_err(|e| (format!("cannot write {path}: {e}"), 1))?;
        }
        if json {
            println!("{json_report}");
        } else {
            println!(
                "{}",
                render_markdown(&measurements, &rows, tolerance_pct, engine_label)
            );
        }

        let regressions: Vec<&CompareRow> = rows.iter().filter(|r| r.regressed).collect();
        if !regressions.is_empty() {
            return Err((
                format!(
                    "perf regression gate failed: {} bench(es) more than {tolerance_pct:.0}% \
                     slower than the committed trajectory ({})",
                    regressions.len(),
                    regressions
                        .iter()
                        .map(|r| format!("{} {:+.1}%", r.name, r.delta_pct))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                1,
            ));
        }
        if compare_path.is_some() {
            eprintln!(
                "repro: perf gate passed ({} bench(es) within {tolerance_pct:.0}%)",
                rows.len()
            );
        }
        Ok(())
    }
}

/// The `repro trace` subcommand family: offline aggregation of span traces
/// written by `repro run --trace FILE` (or `REPRO_TRACE=FILE`).
mod trace_cli {
    fn usage() -> String {
        "usage: repro trace summarize FILE [--json]\n\
         \n\
         aggregates a span-trace JSONL file (written by `repro run --trace FILE`)\n\
         into per-span-name count / total / mean / p95 durations"
            .to_string()
    }

    pub fn run(args: &[String]) -> Result<(), (String, u8)> {
        let mut json = false;
        let mut positional: Vec<&String> = Vec::new();
        for arg in args {
            match arg.as_str() {
                "--json" => json = true,
                "--help" | "-h" => return Err((usage(), 0)),
                other if other.starts_with("--") => {
                    return Err((format!("unknown flag '{other}'\n{}", usage()), 2))
                }
                _ => positional.push(arg),
            }
        }
        let [cmd, file] = positional.as_slice() else {
            return Err((format!("'repro trace' needs a subcommand\n{}", usage()), 2));
        };
        if cmd.as_str() != "summarize" {
            return Err((format!("unknown trace subcommand '{cmd}'\n{}", usage()), 2));
        }
        let text = std::fs::read_to_string(file.as_str())
            .map_err(|e| (format!("cannot read {file}: {e}"), 1))?;
        let summary = rc4_obs::summary::summarize_jsonl(&text).map_err(|e| (e, 1))?;
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&summary.to_value()).expect("summary serializes")
            );
        } else {
            println!("{}", summary.render_table());
        }
        Ok(())
    }
}

/// The serving-mode subcommand family: run the resident `reprod` job server
/// (`repro serve`) and talk to it (`submit`, `jobs`, `watch`, `result`,
/// `cancel`, `status`, `shutdown`). All client commands find the server
/// through `--addr`, falling back to the `addr` file the server writes into
/// its state directory.
mod serve_cli {
    use std::path::PathBuf;

    use rc4_attacks::experiments::Scale;
    use rc4_serve::{Client, JobSpec, JobStatus, Server, ServerConfig};

    use super::{parse_scale, parse_u64};

    type CliResult<T> = Result<T, (String, u8)>;

    fn fail<T>(msg: impl Into<String>) -> CliResult<T> {
        Err((msg.into(), 2))
    }

    fn usage() -> String {
        "usage: repro serve [--addr HOST:PORT] [--state-dir DIR] [--budget N] \
         [--default-workers W] [--cache-dir DIR] [--no-cache]\n       \
         repro submit NAME [--scale S] [--seed N] [--priority P] [--workers W] [CONN]\n       \
         repro jobs [--json] [CONN]\n       \
         repro watch ID [--from N] [CONN]\n       \
         repro result ID [--telemetry] [CONN]\n       \
         repro cancel ID [CONN]\n       \
         repro status [--json|--metrics] [CONN]\n       \
         repro shutdown [--deadline-ms N] [CONN]\n\
         \n\
         CONN: --addr HOST:PORT | --state-dir DIR (reads DIR/addr; default .reprod)\n\
         status is human-readable by default; --json prints the raw status frame,\n\
         --metrics prints the server's metrics registry snapshot instead.\n\
         result --telemetry adds the job's scheduling timings on stderr; the\n\
         stdout result document stays byte-identical either way."
            .to_string()
    }

    /// Flags shared by every client command: how to reach the server.
    struct Conn {
        addr: Option<String>,
        state_dir: PathBuf,
    }

    impl Conn {
        fn resolve(&self) -> CliResult<String> {
            if let Some(addr) = &self.addr {
                return Ok(addr.clone());
            }
            let path = self.state_dir.join("addr");
            match std::fs::read_to_string(&path) {
                Ok(text) => Ok(text.trim().to_string()),
                Err(e) => fail(format!(
                    "cannot read server address from {} ({e}); is a server running? \
                     start one with `repro serve` or point at it with --addr",
                    path.display()
                )),
            }
        }

        fn connect(&self) -> CliResult<Client> {
            let addr = self.resolve()?;
            Client::connect(&addr).map_err(|e| (e.to_string(), 1))
        }
    }

    /// Parses the flags of one serve-family command. `positional` collects
    /// non-flag arguments (experiment name, job ID); unknown flags error.
    struct Parsed {
        conn: Conn,
        positional: Vec<String>,
        scale: Scale,
        seed: u64,
        priority: i64,
        workers: u64,
        from: u64,
        deadline_ms: u64,
        budget: usize,
        default_workers: usize,
        cache_dir: Option<String>,
        no_cache: bool,
        json: bool,
        metrics: bool,
        telemetry: bool,
    }

    fn parse(args: &[String]) -> CliResult<Parsed> {
        let mut parsed = Parsed {
            conn: Conn {
                addr: None,
                state_dir: PathBuf::from(".reprod"),
            },
            positional: Vec::new(),
            scale: Scale::Quick,
            seed: 0,
            priority: 0,
            workers: 0,
            from: 0,
            deadline_ms: 10_000,
            budget: std::thread::available_parallelism().map_or(4, usize::from),
            default_workers: 1,
            cache_dir: None,
            no_cache: false,
            json: false,
            metrics: false,
            telemetry: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => parsed.json = true,
                "--no-cache" => parsed.no_cache = true,
                "--metrics" => parsed.metrics = true,
                "--telemetry" => parsed.telemetry = true,
                "--help" | "-h" => return Err((usage(), 0)),
                "--addr" | "--state-dir" | "--scale" | "--seed" | "--priority" | "--workers"
                | "--from" | "--deadline-ms" | "--budget" | "--default-workers" | "--cache-dir" => {
                    let value = it
                        .next()
                        .ok_or_else(|| (format!("{arg} requires a value\n{}", usage()), 2u8))?;
                    match arg.as_str() {
                        "--addr" => parsed.conn.addr = Some(value.clone()),
                        "--state-dir" => parsed.conn.state_dir = PathBuf::from(value),
                        "--scale" => {
                            parsed.scale = parse_scale(value).map_err(|msg| (msg, 2))?;
                        }
                        "--seed" => {
                            parsed.seed = parse_u64(value).map_err(|msg| (msg, 2))?;
                        }
                        "--priority" => {
                            parsed.priority = value.parse().map_err(|_| {
                                (format!("--priority expects an integer, got '{value}'"), 2u8)
                            })?;
                        }
                        "--workers" | "--from" | "--deadline-ms" => {
                            let n = parse_u64(value).map_err(|msg| (msg, 2))?;
                            match arg.as_str() {
                                "--workers" => parsed.workers = n,
                                "--from" => parsed.from = n,
                                _ => parsed.deadline_ms = n,
                            }
                        }
                        "--budget" | "--default-workers" => {
                            let n: usize = value.parse().map_err(|_| {
                                (format!("{arg} expects an integer, got '{value}'"), 2u8)
                            })?;
                            if n == 0 {
                                return fail(format!("{arg} must be at least 1"));
                            }
                            match arg.as_str() {
                                "--budget" => parsed.budget = n,
                                _ => parsed.default_workers = n,
                            }
                        }
                        _ => parsed.cache_dir = Some(value.clone()),
                    }
                }
                other if other.starts_with("--") => {
                    return fail(format!("unknown flag '{other}'\n{}", usage()))
                }
                other => parsed.positional.push(other.to_string()),
            }
        }
        Ok(parsed)
    }

    fn job_id(parsed: &Parsed, cmd: &str) -> CliResult<u64> {
        match parsed.positional.as_slice() {
            [one] => parse_u64(one).map_err(|msg| (format!("job ID: {msg}"), 2)),
            _ => fail(format!(
                "'repro {cmd}' needs exactly one job ID\n{}",
                usage()
            )),
        }
    }

    pub fn run(cmd: &str, args: &[String]) -> CliResult<()> {
        let parsed = parse(args)?;
        match cmd {
            "serve" => serve(&parsed),
            "submit" => submit(&parsed),
            "jobs" => jobs(&parsed),
            "watch" => watch(&parsed),
            "result" => result(&parsed),
            "cancel" => cancel(&parsed),
            "status" => status(&parsed),
            "shutdown" => shutdown(&parsed),
            _ => unreachable!("dispatch guards the command list"),
        }
    }

    fn serve(parsed: &Parsed) -> CliResult<()> {
        if !parsed.positional.is_empty() {
            return fail(format!("'repro serve' takes no positionals\n{}", usage()));
        }
        let state_dir = parsed.conn.state_dir.clone();
        let cache_dir = if parsed.no_cache {
            None
        } else {
            Some(
                parsed
                    .cache_dir
                    .as_ref()
                    .map_or_else(|| state_dir.join("cache"), PathBuf::from),
            )
        };
        let config = ServerConfig {
            addr: parsed
                .conn
                .addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:0".to_string()),
            state_dir,
            budget: parsed.budget,
            default_workers: parsed.default_workers,
            cache_dir,
        };
        let server = Server::bind(config).map_err(|e| (e.to_string(), 1))?;
        eprintln!(
            "reprod: listening on {} (state {}, budget {})",
            server.local_addr(),
            parsed.conn.state_dir.display(),
            parsed.budget
        );
        server.run().map_err(|e| (e.to_string(), 1))
    }

    fn submit(parsed: &Parsed) -> CliResult<()> {
        let [name] = parsed.positional.as_slice() else {
            return fail(format!(
                "'repro submit' needs exactly one experiment name\n{}",
                usage()
            ));
        };
        let mut client = parsed.conn.connect()?;
        let id = client
            .submit(JobSpec {
                name: name.clone(),
                scale: parsed.scale.name().to_string(),
                seed: parsed.seed,
                priority: parsed.priority,
                workers: parsed.workers,
            })
            .map_err(|e| (e.to_string(), 1))?;
        eprintln!(
            "repro: submitted job {id} ({name}, scale {}, seed {})",
            parsed.scale.name(),
            parsed.seed
        );
        // Bare ID on stdout so scripts can `id=$(repro submit ...)`.
        println!("{id}");
        Ok(())
    }

    fn jobs(parsed: &Parsed) -> CliResult<()> {
        let mut client = parsed.conn.connect()?;
        let records = client.jobs().map_err(|e| (e.to_string(), 1))?;
        if parsed.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&serde::Value::Array(records))
                    .expect("jobs serialize")
            );
            return Ok(());
        }
        for record in &records {
            let field = |name: &str| match record.field(name) {
                Ok(serde::Value::Str(s)) => s.clone(),
                Ok(serde::Value::UInt(n)) => n.to_string(),
                Ok(serde::Value::Int(n)) => n.to_string(),
                _ => "-".to_string(),
            };
            println!(
                "{:>4}  {:10}  {:18}  scale {:8}  seed {:6}  workers {}",
                field("id"),
                field("status"),
                field("name"),
                field("scale"),
                field("seed"),
                field("workers"),
            );
        }
        Ok(())
    }

    fn watch(parsed: &Parsed) -> CliResult<()> {
        let id = job_id(parsed, "watch")?;
        let mut client = parsed.conn.connect()?;
        let (status, dropped) = client
            .watch(id, parsed.from, |seq, line| println!("[{seq}] {line}"))
            .map_err(|e| (e.to_string(), 1))?;
        if dropped > 0 {
            eprintln!("repro: server failed to persist {dropped} event(s) to its on-disk log");
        }
        println!("job {id} {}", status.name());
        match status {
            JobStatus::Done => Ok(()),
            other => Err((format!("job {id} ended {}", other.name()), 1)),
        }
    }

    fn result(parsed: &Parsed) -> CliResult<()> {
        let id = job_id(parsed, "result")?;
        let mut client = parsed.conn.connect()?;
        if parsed.telemetry {
            let (document, telemetry) = client
                .result_with_telemetry(id)
                .map_err(|e| (e.to_string(), 1))?;
            print!("{document}");
            // Telemetry goes to stderr so `repro result ID --telemetry > out`
            // still captures exactly the byte-identical result document.
            match telemetry {
                Some(t) => eprintln!(
                    "repro: job {id} telemetry: {}",
                    serde_json::to_string(&t).expect("telemetry serializes")
                ),
                None => eprintln!(
                    "repro: job {id} has no recorded telemetry (finished by a previous server run)"
                ),
            }
            return Ok(());
        }
        let document = client.result(id).map_err(|e| (e.to_string(), 1))?;
        // The document already carries the one-shot run's trailing newline;
        // print it verbatim to preserve byte identity.
        print!("{document}");
        Ok(())
    }

    fn cancel(parsed: &Parsed) -> CliResult<()> {
        let id = job_id(parsed, "cancel")?;
        let mut client = parsed.conn.connect()?;
        let status = client.cancel(id).map_err(|e| (e.to_string(), 1))?;
        println!("job {id} {}", status.name());
        Ok(())
    }

    fn status(parsed: &Parsed) -> CliResult<()> {
        let mut client = parsed.conn.connect()?;
        if parsed.metrics {
            let metrics = client.metrics().map_err(|e| (e.to_string(), 1))?;
            println!(
                "{}",
                serde_json::to_string_pretty(&metrics).expect("metrics serialize")
            );
            return Ok(());
        }
        let status = client.status().map_err(|e| (e.to_string(), 1))?;
        if parsed.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&status).expect("status serializes")
            );
            return Ok(());
        }
        println!("{}", render_status(&status));
        Ok(())
    }

    /// Human rendering of the raw status frame (`--json` prints it verbatim).
    fn render_status(status: &serde::Value) -> String {
        let flag =
            |v: &serde::Value, name: &str| matches!(v.field(name), Ok(serde::Value::Bool(true)));
        let uint = |v: &serde::Value, name: &str| match v.field(name) {
            Ok(serde::Value::UInt(n)) => *n,
            _ => 0,
        };
        let mut out = format!(
            "state    {}\nqueued   {}",
            if flag(status, "draining") {
                "draining"
            } else {
                "accepting"
            },
            uint(status, "queued"),
        );
        if let Ok(serde::Value::Object(counts)) = status.field("jobs") {
            let rendered: Vec<String> = counts
                .iter()
                .map(|(name, v)| {
                    let n = match v {
                        serde::Value::UInt(n) => *n,
                        _ => 0,
                    };
                    format!("{n} {name}")
                })
                .collect();
            out.push_str(&format!("\njobs     {}", rendered.join(", ")));
        }
        if let Ok(budget) = status.field("budget") {
            out.push_str(&format!(
                "\nbudget   {}/{} workers in use, {} job(s) waiting, {} lease(s) granted",
                uint(budget, "in_use"),
                uint(budget, "total"),
                uint(budget, "waiting"),
                uint(budget, "granted"),
            ));
        }
        if let Ok(flights) = status.field("flights") {
            out.push_str(&format!(
                "\nflights  {} in flight, {} begun, {} coalesced wait(s)",
                uint(flights, "in_flight"),
                uint(flights, "begun"),
                uint(flights, "waited"),
            ));
        }
        out
    }

    fn shutdown(parsed: &Parsed) -> CliResult<()> {
        let mut client = parsed.conn.connect()?;
        let summary = client
            .shutdown(parsed.deadline_ms)
            .map_err(|e| (e.to_string(), 1))?;
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("summary serializes")
        );
        Ok(())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        // Exit 0 is the --help path: usage belongs on stdout, unprefixed.
        Err((msg, 0)) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("repro: {msg}");
            ExitCode::from(code)
        }
    }
}
