//! `repro` — regenerate every table and figure of the paper at a chosen scale.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT] [SCALE] [--json]
//!
//! EXPERIMENT: all | table1 | fig4 | table2 | eq345 | fig5 | fig6 | longterm |
//!             headline | fig7 | fig8 | fig10          (default: all)
//! SCALE:      quick | laptop | extended               (default: quick)
//! --json:     additionally print each report as JSON
//! ```

use rc4_attacks::experiments::{
    biases::{
        eq345_equalities, fig4_fm_shortterm, fig5_z1z2, fig6_single_byte, headline_detection,
        longterm_aligned, table1_fm_longterm, table2_new_biases,
    },
    fig10::{self, Fig10Config},
    fig7::{self, Fig7Config},
    fig8::{self, Fig8Config, TkipTrafficModel},
    Scale,
};
use rc4_attacks::{ExperimentError, ExperimentReport};

fn fig7_config(scale: Scale) -> Fig7Config {
    match scale {
        Scale::Quick => Fig7Config::quick(),
        Scale::Laptop => Fig7Config {
            ciphertext_counts: vec![1 << 27, 1 << 29, 1 << 31, 1 << 33, 1 << 35],
            trials: 32,
            absab_relations: 64,
            ..Fig7Config::default()
        },
        Scale::Extended => Fig7Config {
            ciphertext_counts: vec![
                1 << 27,
                1 << 29,
                1 << 31,
                1 << 33,
                1 << 35,
                1 << 37,
                1 << 39,
            ],
            trials: 128,
            absab_relations: 258,
            ..Fig7Config::default()
        },
    }
}

fn fig8_config(scale: Scale) -> Fig8Config {
    match scale {
        Scale::Quick => Fig8Config::quick(),
        Scale::Laptop => Fig8Config::default(),
        Scale::Extended => Fig8Config {
            capture_counts: vec![1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 21],
            trials: 64,
            max_candidates: 1 << 20,
            model: TkipTrafficModel::Empirical { keys: 1 << 22 },
            ..Fig8Config::default()
        },
    }
}

fn fig10_config(scale: Scale) -> Fig10Config {
    match scale {
        Scale::Quick => Fig10Config::quick(),
        Scale::Laptop => Fig10Config::default(),
        Scale::Extended => Fig10Config {
            request_counts: (1..=15u64).step_by(2).map(|k| k << 27).collect(),
            trials: 64,
            cookie_len: 16,
            candidates: 1 << 17,
            absab_relations: 258,
            ..Fig10Config::default()
        },
    }
}

fn run_one(id: &str, scale: Scale) -> Result<Vec<ExperimentReport>, ExperimentError> {
    let bias_scale = bench::bias_scale_for(scale);
    let reports = match id {
        "table1" => vec![table1_fm_longterm(&bias_scale)?],
        "fig4" => vec![fig4_fm_shortterm(
            &bias_scale,
            &[1, 2, 5, 17, 32, 64, 96, 130, 192, 257, 288],
        )?],
        "table2" => vec![table2_new_biases(&bias_scale)?],
        "eq345" => vec![eq345_equalities(&bias_scale)?],
        "fig5" => vec![fig5_z1z2(&bias_scale, &[4, 8, 16, 32, 64, 128, 192, 256])?],
        "fig6" => vec![fig6_single_byte(&bias_scale)?],
        "longterm" => vec![longterm_aligned(&bias_scale)?],
        "headline" => vec![headline_detection(&bias_scale)?],
        "fig7" => vec![fig7::run(&fig7_config(scale))?],
        "fig8" | "fig9" => vec![fig8::run(&fig8_config(scale))?.1],
        "fig10" => vec![fig10::run(&fig10_config(scale))?.1],
        "all" => {
            let mut all = Vec::new();
            for id in [
                "headline", "table1", "fig4", "table2", "eq345", "fig5", "fig6", "longterm",
                "fig7", "fig8", "fig10",
            ] {
                all.extend(run_one(id, scale)?);
            }
            all
        }
        other => {
            return Err(ExperimentError::InvalidConfig(format!(
                "unknown experiment '{other}'"
            )))
        }
    };
    Ok(reports)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let experiment = positional.first().map(|s| s.as_str()).unwrap_or("all");
    let scale = match positional.get(1) {
        None => Scale::Quick,
        Some(s) => match Scale::parse(s) {
            Some(scale) => scale,
            None => {
                eprintln!("repro: unknown scale '{s}' (expected quick | laptop | extended)");
                std::process::exit(2);
            }
        },
    };

    eprintln!("repro: experiment = {experiment}, scale = {scale:?}");
    match run_one(experiment, scale) {
        Ok(reports) => {
            for report in reports {
                println!("{}", report.render());
                if json {
                    println!("{}", report.to_json());
                }
            }
        }
        Err(e) => {
            eprintln!("repro failed: {e}");
            std::process::exit(1);
        }
    }
}
