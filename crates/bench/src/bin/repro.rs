//! `repro` — thin driver over the experiment registry: regenerate every
//! table, figure and end-to-end attack of the paper at a chosen scale.
//!
//! Usage:
//!
//! ```text
//! repro list
//! repro run <NAME...|all> [--scale quick|laptop|extended] [--seed N]
//!           [--workers W] [--json] [--config FILE]
//!
//! --scale    per-experiment preset to start from        (default: quick)
//! --seed     global seed mixed into every experiment    (default: 0)
//! --workers  dataset-generation worker threads          (default: 1)
//! --json     print ONLY a JSON array with one report per experiment
//! --config   JSON object {"<experiment>": {<config>}, ...}; each value is a
//!            COMPLETE config object that replaces the scale preset for that
//!            experiment (print a template with `Experiment::config_json`)
//!
//! # legacy form, kept for muscle memory and old scripts:
//! repro [EXPERIMENT] [SCALE] [--json]
//! ```
//!
//! Everything experiment-specific — names, summaries, per-scale defaults,
//! config schemas — lives in the registry (`rc4_attacks::Registry`); this
//! binary only parses arguments and renders reports.

use std::process::ExitCode;
use std::sync::Arc;

use rc4_attacks::{
    context::StderrSink, experiments::Scale, Experiment, ExperimentContext, ExperimentReport,
    Registry,
};

/// Parsed command line.
struct Args {
    command: Command,
    scale: Scale,
    seed: u64,
    workers: usize,
    json: bool,
    config_path: Option<String>,
}

enum Command {
    List,
    Run(Vec<String>),
}

fn usage() -> String {
    "usage: repro list\n       repro run <NAME...|all> [--scale S] [--seed N] [--workers W] [--json] [--config FILE]".to_string()
}

/// Parses the command line; `Err` carries the message and exit status
/// (`--help` exits 0 with usage on stdout, parse errors exit 2 on stderr).
fn parse_args(args: &[String]) -> Result<Args, (String, u8)> {
    let mut positional: Vec<String> = Vec::new();
    let mut scale: Option<Scale> = None;
    let mut seed = 0u64;
    let mut workers = 1usize;
    let mut json = false;
    let mut config_path = None;

    let fail = |msg: String| (msg, 2u8);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scale" | "--seed" | "--workers" | "--config" => {
                let value = it
                    .next()
                    .ok_or_else(|| fail(format!("{arg} requires a value\n{}", usage())))?;
                match arg.as_str() {
                    "--scale" => scale = Some(parse_scale(value).map_err(fail)?),
                    "--seed" => {
                        seed = value.parse().map_err(|_| {
                            fail(format!("--seed expects an integer, got '{value}'"))
                        })?;
                    }
                    "--workers" => {
                        workers = value.parse().map_err(|_| {
                            fail(format!("--workers expects an integer, got '{value}'"))
                        })?;
                    }
                    _ => config_path = Some(value.clone()),
                }
            }
            "--help" | "-h" => return Err((usage(), 0)),
            other if other.starts_with("--") => {
                return Err(fail(format!("unknown flag '{other}'\n{}", usage())))
            }
            other => positional.push(other.to_string()),
        }
    }

    let command = match positional.split_first() {
        None => Command::Run(vec!["all".to_string()]),
        Some((first, rest)) => match first.as_str() {
            "list" => {
                if !rest.is_empty() {
                    return Err(fail(format!(
                        "'repro list' takes no arguments\n{}",
                        usage()
                    )));
                }
                Command::List
            }
            "run" => {
                if rest.is_empty() {
                    return Err(fail(format!(
                        "'repro run' needs experiment names\n{}",
                        usage()
                    )));
                }
                Command::Run(rest.to_vec())
            }
            // Legacy form: exactly one experiment plus an optional scale.
            // Anything longer is ambiguous (name list vs name+scale), so
            // point at the explicit `run` subcommand instead of guessing.
            _ => {
                match rest {
                    [] => {}
                    [scale_name] => {
                        if scale.is_some() {
                            return Err(fail(format!(
                                "give the scale either positionally or via --scale, not both\n{}",
                                usage()
                            )));
                        }
                        scale = Some(parse_scale(scale_name).map_err(fail)?);
                    }
                    _ => {
                        return Err(fail(format!(
                            "the legacy form takes one experiment and an optional scale; \
                             use 'repro run <NAME...>' to run several experiments\n{}",
                            usage()
                        )));
                    }
                }
                Command::Run(vec![first.to_string()])
            }
        },
    };

    Ok(Args {
        command,
        scale: scale.unwrap_or(Scale::Quick),
        seed,
        workers,
        json,
        config_path,
    })
}

fn parse_scale(name: &str) -> Result<Scale, String> {
    Scale::parse(name).ok_or_else(|| {
        let known: Vec<&str> = Scale::ALL.iter().map(|s| s.name()).collect();
        format!("unknown scale '{name}' (expected {})", known.join(" | "))
    })
}

/// Loads and validates the `--config` overrides: a JSON object keyed by
/// registered experiment name (or alias), with each value a *complete*
/// config object for that experiment. Keys are canonicalized through the
/// registry so alias-keyed entries (e.g. `"fig9"`) reach the experiment.
fn load_config_overrides(
    registry: &Registry,
    path: &str,
) -> Result<Vec<(String, serde::Value)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read config {path}: {e}"))?;
    let value: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("config {path} is not valid JSON: {e}"))?;
    let serde::Value::Object(fields) = value else {
        return Err(format!(
            "config {path} must be a JSON object keyed by experiment name"
        ));
    };
    let mut overrides: Vec<(String, serde::Value)> = Vec::with_capacity(fields.len());
    for (name, value) in fields {
        let Some(entry) = registry.find(&name) else {
            return Err(format!(
                "config {path} mentions unknown experiment '{name}'; registered experiments: {}",
                registry.names().join(", ")
            ));
        };
        let canonical = entry.name().to_string();
        if overrides.iter().any(|(n, _)| *n == canonical) {
            return Err(format!(
                "config {path} configures '{canonical}' twice (aliases count)"
            ));
        }
        overrides.push((canonical, value));
    }
    Ok(overrides)
}

/// Resolves `names` ("all" expands to the whole registry) into instantiated
/// experiments at `scale` with `overrides` applied.
fn build_experiments(
    registry: &Registry,
    names: &[String],
    scale: Scale,
    overrides: &[(String, serde::Value)],
) -> Result<Vec<Box<dyn Experiment>>, String> {
    let mut resolved: Vec<&str> = Vec::new();
    for name in names {
        if name == "all" {
            resolved.extend(registry.names());
        } else {
            resolved.push(name.as_str());
        }
    }
    let mut experiments = Vec::with_capacity(resolved.len());
    let mut overrides_used = vec![false; overrides.len()];
    for name in resolved {
        let mut experiment = registry.create(name).map_err(|e| e.to_string())?;
        experiment.apply_scale(scale);
        let canonical = experiment.name();
        if let Some(idx) = overrides.iter().position(|(n, _)| n == canonical) {
            experiment
                .set_config_value(&overrides[idx].1)
                .map_err(|e| e.to_string())?;
            overrides_used[idx] = true;
        }
        experiments.push(experiment);
    }
    // A validated-but-unused override would silently produce preset results
    // the user believes were overridden; refuse instead.
    let unused: Vec<&str> = overrides
        .iter()
        .zip(&overrides_used)
        .filter(|(_, used)| !**used)
        .map(|((name, _), _)| name.as_str())
        .collect();
    if !unused.is_empty() {
        return Err(format!(
            "--config configures {} but {} not being run; add the name(s) to 'repro run' or drop the entry",
            unused.join(", "),
            if unused.len() == 1 { "it is" } else { "they are" }
        ));
    }
    Ok(experiments)
}

fn run() -> Result<(), (String, u8)> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw)?;
    let registry = Registry::with_defaults();

    match args.command {
        Command::List => {
            if args.json {
                let entries: Vec<serde::Value> = registry
                    .entries()
                    .iter()
                    .map(|e| {
                        serde::Value::Object(vec![
                            ("name".into(), serde::Value::Str(e.name().into())),
                            ("summary".into(), serde::Value::Str(e.summary().into())),
                        ])
                    })
                    .collect();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&entries).expect("list serializes")
                );
            } else {
                let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
                for entry in registry.entries() {
                    println!("{:width$}  {}", entry.name(), entry.summary());
                }
            }
            Ok(())
        }
        Command::Run(names) => {
            let overrides = match &args.config_path {
                Some(path) => load_config_overrides(&registry, path).map_err(|msg| (msg, 2))?,
                None => Vec::new(),
            };
            let experiments = build_experiments(&registry, &names, args.scale, &overrides)
                .map_err(|msg| (msg, 2))?;

            let ctx = ExperimentContext::new()
                .with_seed(args.seed)
                .with_workers(args.workers)
                .with_sink(Arc::new(StderrSink));
            eprintln!(
                "repro: running {} experiment(s) at scale {} (seed {}, {} worker(s))",
                experiments.len(),
                args.scale.name(),
                args.seed,
                args.workers
            );

            let mut reports: Vec<ExperimentReport> = Vec::with_capacity(experiments.len());
            for experiment in &experiments {
                let report = experiment
                    .run(&ctx)
                    .map_err(|e| (format!("experiment '{}' failed: {e}", experiment.name()), 1))?;
                if !args.json {
                    println!("{}", report.render());
                }
                reports.push(report);
            }
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&reports).expect("reports serialize")
                );
            }
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        // Exit 0 is the --help path: usage belongs on stdout, unprefixed.
        Err((msg, 0)) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("repro: {msg}");
            ExitCode::from(code)
        }
    }
}
