//! Fig. 10 regeneration: the HTTPS cookie recovery simulation, plus the
//! cookie-alphabet ablation from Sect. 6.2 (restricting candidates to the 90
//! RFC 6265 characters vs the full byte range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plaintext_recovery::charset::Charset;
use rc4_attacks::experiments::fig10::{run, Fig10Config};

fn bench_fig10_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_cookie_recovery");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| {
        let config = Fig10Config::quick();
        b.iter(|| run(std::hint::black_box(&config)).unwrap());
    });
    group.finish();
}

fn bench_charset_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_charset");
    group.sample_size(10);
    for (name, charset) in [
        ("hex16", Charset::hex_lower()),
        ("base64", Charset::base64()),
        ("cookie90", Charset::cookie()),
        ("full256", Charset::full()),
    ] {
        let config = Fig10Config {
            request_counts: vec![1 << 30],
            trials: 1,
            cookie_len: 4,
            candidates: 128,
            absab_relations: 8,
            charset,
            ..Fig10Config::quick()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run(std::hint::black_box(config)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10_point, bench_charset_ablation);
criterion_main!(benches);
