//! Ablation: the paper's 16-bit batched counter layout versus plain u64
//! counters for the statistics workers (Sect. 3.2 optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc4_stats::counters::{Batched16Counter, PlainCounter};

/// Deterministic scattered update pattern mimicking digraph counting.
fn update_stream(len: usize, cells: usize) -> Vec<usize> {
    let mut x = 0x12345678u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize % cells
        })
        .collect()
}

fn bench_counters(c: &mut Criterion) {
    let cells = 65536;
    let updates = update_stream(1 << 18, cells);
    let mut group = c.benchmark_group("counter_layout");
    group.sample_size(10);
    group.throughput(Throughput::Elements(updates.len() as u64));

    group.bench_function("plain_u64", |b| {
        b.iter(|| {
            let mut counter = PlainCounter::new(cells);
            for &idx in std::hint::black_box(&updates) {
                counter.record(idx);
            }
            counter.into_counts()
        });
    });

    for batch in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("batched_u16", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut counter = Batched16Counter::new(cells, 60_000, batch).unwrap();
                    for &idx in std::hint::black_box(&updates) {
                        counter.record(idx);
                    }
                    counter.into_counts()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
