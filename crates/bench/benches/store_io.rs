//! Throughput of the persistent dataset store (`rc4-store`): shard write,
//! validated read, and n-way merge over a consec-style pair dataset.
//!
//! The store is on every checkpoint of a long collection run, so its write
//! path bounds how often generation can afford to flush, and its read path
//! bounds experiment start-up on a cache hit. Both move the full cell array
//! (here 16 pairs x 65536 u64 cells = 8 MiB) plus a CRC-32 pass.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rc4_stats::{pairs::PairDataset, worker::generate, GenerationConfig, StorableDataset};
use rc4_store::{merge_shards, read_shard, write_shard, ShardHeader};

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rc4-store-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A filled consec-16 pair dataset plus its (complete) shard header.
fn sample() -> (ShardHeader, PairDataset, u64) {
    let config = GenerationConfig::with_keys(2_000).seed(0xBE7C);
    let mut ds = PairDataset::consecutive(16).unwrap();
    generate(&mut ds, &config).unwrap();
    let mut header = ShardHeader::new(
        "pairs",
        config,
        ds.shape_params(),
        0,
        1,
        ds.cell_count() as u64,
    )
    .unwrap();
    header.progress = vec![config.keys];
    let bytes = ds.cell_count() as u64 * 8;
    (header, ds, bytes)
}

fn bench_store_io(c: &mut Criterion) {
    let dir = scratch();
    let (header, ds, bytes) = sample();

    let mut group = c.benchmark_group("store_io");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));

    let write_path = dir.join("write.ds");
    group.bench_function("write_shard_8mib", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&write_path);
            write_shard(&write_path, &header, &ds).unwrap();
        });
    });

    let read_path = dir.join("read.ds");
    write_shard(&read_path, &header, &ds).unwrap();
    group.bench_function("read_shard_8mib", |b| {
        b.iter(|| read_shard::<PairDataset>(&read_path).unwrap().dataset);
    });
    group.finish();

    // Merge: two disjoint half-shards into a master (reads 2 x 8 MiB,
    // validates, sums, writes 8 MiB).
    let config = GenerationConfig::with_keys(2_000).workers(2).seed(0xBE7C);
    let mut shards = Vec::new();
    for (i, (lo, hi)) in [(0u64, 1u64), (1, 2)].into_iter().enumerate() {
        let path = dir.join(format!("half{i}.ds"));
        let _ = std::fs::remove_file(&path);
        rc4_store::generate_shard(
            &path,
            PairDataset::consecutive(16).unwrap(),
            &rc4_store::ShardSpec::workers(config, lo, hi),
            &rc4_store::GenerateOptions::default(),
            None,
            &mut |_, _| {},
        )
        .unwrap();
        shards.push(path);
    }
    let mut group = c.benchmark_group("store_merge");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes * 2));
    let out = dir.join("merged.ds");
    group.bench_function("merge_2x8mib", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&out);
            merge_shards::<PairDataset>(&[&shards[0], &shards[1]], &out).unwrap()
        });
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_store_io);
criterion_main!(benches);
