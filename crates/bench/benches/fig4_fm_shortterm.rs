//! Fig. 4 regeneration cost: consecutive-pair dataset generation and the
//! independence tests over the initial keystream bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc4_attacks::experiments::biases::{fig4_fm_shortterm, BiasScale};
use rc4_stats::{pairs::PairDataset, worker::generate, GenerationConfig};
use stat_tests::mtest::m_test_independence;

fn bench_pair_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_pair_dataset");
    group.sample_size(10);
    for keys in [1u64 << 10, 1 << 12] {
        group.throughput(Throughput::Elements(keys));
        group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, &keys| {
            b.iter(|| {
                let mut ds = PairDataset::consecutive(16).unwrap();
                generate(&mut ds, &GenerationConfig::with_keys(keys).seed(4)).unwrap();
                ds
            });
        });
    }
    group.finish();
}

fn bench_independence_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_m_test");
    group.sample_size(10);
    let mut ds = PairDataset::consecutive(2).unwrap();
    generate(&mut ds, &GenerationConfig::with_keys(1 << 14).seed(4)).unwrap();
    group.bench_function("m_test_256x256", |b| {
        b.iter(|| m_test_independence(std::hint::black_box(ds.joint_counts(0)), 256, 256).unwrap());
    });
    group.finish();
}

fn bench_fig4_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_report");
    group.sample_size(10);
    let scale = BiasScale {
        keys: 1 << 12,
        ..BiasScale::quick()
    };
    group.bench_function("tiny_scale", |b| {
        b.iter(|| fig4_fm_shortterm(std::hint::black_box(&scale), &[1, 17]).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pair_dataset_generation,
    bench_independence_test,
    bench_fig4_report
);
criterion_main!(benches);
