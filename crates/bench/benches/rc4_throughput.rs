//! Throughput of the RC4 substrate: KSA cost and bulk keystream generation.
//!
//! The statistics datasets (Sect. 3.2) are bounded by how fast keystreams can
//! be generated; this bench pins that number down on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc4::{Prga, Rc4};

fn bench_ksa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_ksa");
    for key_len in [5usize, 16, 32] {
        let key = vec![0xA5u8; key_len];
        group.bench_with_input(BenchmarkId::from_parameter(key_len), &key, |b, key| {
            b.iter(|| Prga::new(std::hint::black_box(key)).unwrap());
        });
    }
    group.finish();
}

fn bench_keystream(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_keystream");
    for len in [256usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut prga = Prga::new(b"benchmark key 16").unwrap();
            let mut buf = vec![0u8; len];
            b.iter(|| {
                prga.fill(std::hint::black_box(&mut buf));
            });
        });
    }
    group.finish();
}

fn bench_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_encrypt");
    let data = vec![0x5Au8; 1500];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("mtu_sized_packet", |b| {
        let mut cipher = Rc4::new(b"benchmark key 16").unwrap();
        let mut buf = data.clone();
        b.iter(|| cipher.apply_keystream(std::hint::black_box(&mut buf)));
    });
    group.finish();
}

criterion_group!(benches, bench_ksa, bench_keystream, bench_encrypt);
criterion_main!(benches);
