//! Throughput of the RC4 substrate: KSA cost, bulk keystream generation, and
//! the batched multi-key engine's lane-count sweep.
//!
//! The statistics datasets (Sect. 3.2) are bounded by how fast keystreams can
//! be generated; this bench pins that number down on the build machine. The
//! `rc4_batch_*` groups sweep the interleaved engine's lane count — they are
//! how `rc4::batch::DEFAULT_LANES` was chosen (see README "Performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc4::batch::{InterleavedBatch, KeystreamBatch};
use rc4::{Prga, Rc4};
use rc4_accel::AutoBatch;

fn bench_ksa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_ksa");
    for key_len in [5usize, 16, 32] {
        let key = vec![0xA5u8; key_len];
        group.bench_with_input(BenchmarkId::from_parameter(key_len), &key, |b, key| {
            b.iter(|| Prga::new(std::hint::black_box(key)).unwrap());
        });
    }
    group.finish();
}

fn bench_keystream(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_keystream");
    for len in [256usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut prga = Prga::new(b"benchmark key 16").unwrap();
            let mut buf = vec![0u8; len];
            b.iter(|| {
                prga.fill(std::hint::black_box(&mut buf));
            });
        });
    }
    group.finish();
}

/// Flat lane-major key buffer with `n` distinct 16-byte keys.
fn batch_keys(n: usize) -> Vec<u8> {
    let mut keys = vec![0u8; n * 16];
    for (k, key) in keys.chunks_exact_mut(16).enumerate() {
        for (b, slot) in key.iter_mut().enumerate() {
            *slot = (0x37 + 11 * k + 3 * b) as u8;
        }
    }
    keys
}

/// One iteration = schedule `N` fresh keys + generate `per_lane` bytes per
/// lane, the exact shape of the dataset workers' hot loop.
fn bench_batch_lane<const N: usize>(group: &mut criterion::BenchmarkGroup<'_>, per_lane: usize) {
    let keys = batch_keys(N);
    group.throughput(Throughput::Bytes((N * per_lane) as u64));
    group.bench_with_input(BenchmarkId::from_parameter(N), &keys, |b, keys| {
        let mut engine = InterleavedBatch::<N>::new();
        let mut out = vec![0u8; N * per_lane];
        b.iter(|| {
            engine.schedule(std::hint::black_box(keys), 16).unwrap();
            engine.fill(std::hint::black_box(&mut out), per_lane);
        });
    });
}

fn bench_batch_keystream(c: &mut Criterion) {
    // Long streams: PRGA-bound, the regime of the long-term dataset.
    let mut group = c.benchmark_group("rc4_batch_keystream");
    bench_batch_lane::<1>(&mut group, 4096);
    bench_batch_lane::<4>(&mut group, 4096);
    bench_batch_lane::<8>(&mut group, 4096);
    bench_batch_lane::<16>(&mut group, 4096);
    bench_batch_lane::<32>(&mut group, 4096);
    group.finish();
}

fn bench_batch_short_streams(c: &mut Criterion) {
    // Short streams: KSA-bound, the regime of the single-byte / pair /
    // per-TSC datasets (64 bytes ≈ the per-TSC quick shape).
    let mut group = c.benchmark_group("rc4_batch_short");
    bench_batch_lane::<1>(&mut group, 64);
    bench_batch_lane::<8>(&mut group, 64);
    bench_batch_lane::<16>(&mut group, 64);
    bench_batch_lane::<32>(&mut group, 64);
    group.finish();
}

/// The engine consumers actually run (AVX-512 where the CPU has it, the
/// portable interleaved engine elsewhere), in both regimes. These are the
/// headline numbers the `repro bench` perf gate tracks.
fn bench_batch_auto(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_batch_auto");
    for per_lane in [64usize, 4096] {
        let mut engine = AutoBatch::new();
        let lanes = engine.lanes();
        let keys = batch_keys(lanes);
        group.throughput(Throughput::Bytes((lanes * per_lane) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(per_lane), &keys, |b, keys| {
            let mut out = vec![0u8; lanes * per_lane];
            b.iter(|| {
                engine.schedule(std::hint::black_box(keys), 16).unwrap();
                engine.fill(std::hint::black_box(&mut out), per_lane);
            });
        });
    }
    group.finish();
}

fn bench_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc4_encrypt");
    let data = vec![0x5Au8; 1500];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("mtu_sized_packet", |b| {
        let mut cipher = Rc4::new(b"benchmark key 16").unwrap();
        let mut buf = data.clone();
        b.iter(|| cipher.apply_keystream(std::hint::black_box(&mut buf)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ksa,
    bench_keystream,
    bench_batch_keystream,
    bench_batch_short_streams,
    bench_batch_auto,
    bench_encrypt
);
criterion_main!(benches);
