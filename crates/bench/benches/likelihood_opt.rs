//! Ablation: the optimized sparse likelihood evaluation of Eq. 15 versus the
//! naive dense Eq. 13, and the M-test versus the chi-squared independence test.

use criterion::{criterion_group, criterion_main, Criterion};
use plaintext_recovery::likelihood::PairLikelihoods;
use rc4_biases::{distributions::PairDistribution, fm, UNIFORM_PAIR};
use stat_tests::{chisq::chi_squared_independence, mtest::m_test_independence};

/// Builds ciphertext pair counts for a fixed plaintext pair under the FM model.
fn sample_counts(position: u64, truth: (u8, u8), n: u64) -> Vec<u64> {
    let dist = PairDistribution::fluhrer_mcgrew(position);
    let mut counts = vec![0u64; 65536];
    for k1 in 0..256usize {
        for k2 in 0..256usize {
            let c1 = k1 ^ truth.0 as usize;
            let c2 = k2 ^ truth.1 as usize;
            counts[(c1 << 8) | c2] = (dist.prob(k1 as u8, k2 as u8) * n as f64).round() as u64;
        }
    }
    counts
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let position = 257u64;
    let counts = sample_counts(position, (0x13, 0x37), 1 << 24);
    let total: u64 = counts.iter().sum();
    let dist = PairDistribution::fluhrer_mcgrew(position);
    let cells: Vec<(u8, u8, f64)> = fm::fm_biases_at(position)
        .into_iter()
        .map(|b| (b.first, b.second, b.probability))
        .collect();

    let mut group = c.benchmark_group("likelihood_eq15_vs_eq13");
    group.sample_size(10);
    group.bench_function("sparse_eq15", |b| {
        b.iter(|| {
            PairLikelihoods::from_counts_sparse(
                std::hint::black_box(&counts),
                &cells,
                UNIFORM_PAIR,
                total,
            )
            .unwrap()
        });
    });
    group.bench_function("dense_eq13", |b| {
        b.iter(|| {
            PairLikelihoods::from_counts_dense(std::hint::black_box(&counts), dist.as_slice())
                .unwrap()
        });
    });
    group.finish();
}

fn bench_mtest_vs_chisq(c: &mut Criterion) {
    // The paper prefers the M-test for detecting a few outlying cells; compare
    // the runtime of the two tests on a 256x256 contingency table.
    let counts = sample_counts(1, (0, 0), 1 << 22);
    let mut group = c.benchmark_group("mtest_vs_chisq");
    group.sample_size(10);
    group.bench_function("m_test", |b| {
        b.iter(|| m_test_independence(std::hint::black_box(&counts), 256, 256).unwrap());
    });
    group.bench_function("chi_squared", |b| {
        b.iter(|| chi_squared_independence(std::hint::black_box(&counts), 256, 256).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense, bench_mtest_vs_chisq);
criterion_main!(benches);
