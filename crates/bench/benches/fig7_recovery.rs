//! Fig. 7 regeneration: the two-byte recovery simulation (ABSAB vs FM vs
//! combined) in sampled mode, plus the ABSAB-relation sweep ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc4_attacks::experiments::fig7::{run, Fig7Config};

fn bench_fig7_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_recovery");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| {
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 30],
            trials: 2,
            absab_relations: 16,
            ..Fig7Config::quick()
        };
        b.iter(|| run(std::hint::black_box(&config)).unwrap());
    });
    group.finish();
}

fn bench_absab_relation_sweep(c: &mut Criterion) {
    // Ablation: how the cost of the combined strategy grows with the number of
    // ABSAB relations (the paper combines 258).
    let mut group = c.benchmark_group("fig7_absab_relations");
    group.sample_size(10);
    for relations in [1usize, 8, 32] {
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 30],
            trials: 1,
            absab_relations: relations,
            ..Fig7Config::quick()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(relations),
            &config,
            |b, config| {
                b.iter(|| run(std::hint::black_box(config)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7_point, bench_absab_relation_sweep);
criterion_main!(benches);
