//! Fig. 8 / Fig. 9 regeneration: the TKIP MIC-key recovery simulation, plus the
//! payload-size ablation from Sect. 5.2 (0-byte vs 7-byte TCP payload moves the
//! trailer onto more strongly biased keystream positions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc4_attacks::experiments::fig8::{run, Fig8Config, TkipTrafficModel};

fn bench_fig8_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_tkip_recovery");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| {
        let config = Fig8Config {
            capture_counts: vec![1 << 11],
            trials: 2,
            max_candidates: 1 << 10,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.8 },
            ..Fig8Config::quick()
        };
        b.iter(|| run(std::hint::black_box(&config)).unwrap());
    });
    group.finish();
}

fn bench_payload_choice_ablation(c: &mut Criterion) {
    // Sect. 5.2: the injected packet carries a 7-byte payload so the MIC/ICV land
    // at positions 56..67. The ablation compares the attack cost for the 48-byte
    // (no payload) and 55-byte (7-byte payload) MSDUs.
    let mut group = c.benchmark_group("fig8_payload_choice");
    group.sample_size(10);
    for payload_len in [48usize, 55] {
        let config = Fig8Config {
            capture_counts: vec![1 << 11],
            trials: 2,
            max_candidates: 1 << 10,
            payload_len,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.8 },
            seed: 0xF168,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(payload_len),
            &config,
            |b, config| {
                b.iter(|| run(std::hint::black_box(config)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8_point, bench_payload_choice_ablation);
criterion_main!(benches);
