//! Ablation: cost of generating deeper candidate lists (Algorithm 1 and the
//! list-Viterbi Algorithm 2) as the requested number of candidates grows.
//!
//! The TKIP attack walks up to ~2^30 candidates and the cookie attack ~2^23;
//! the curves here show the near-linear scaling that makes those budgets
//! practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plaintext_recovery::{
    candidates::generate_candidates,
    charset::Charset,
    likelihood::{PairLikelihoods, SingleLikelihoods},
    viterbi::{list_viterbi, ViterbiConfig},
};

fn synthetic_single(positions: usize) -> Vec<SingleLikelihoods> {
    (0..positions)
        .map(|p| {
            let log: Vec<f64> = (0..256)
                .map(|v| {
                    let x = (v as u64 + 1)
                        .wrapping_mul(p as u64 + 3)
                        .wrapping_mul(0x9E37);
                    ((x % 1000) as f64) / 250.0
                })
                .collect();
            SingleLikelihoods::from_log_values(log).unwrap()
        })
        .collect()
}

fn bench_algorithm1_depth(c: &mut Criterion) {
    let liks = synthetic_single(12);
    let mut group = c.benchmark_group("candidate_depth_algorithm1");
    group.sample_size(10);
    for n in [1usize, 256, 4096, 65536] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                generate_candidates(std::hint::black_box(&liks), n, &Charset::full()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_algorithm2_depth(c: &mut Criterion) {
    // 16-byte cookie over the 90-character alphabet, as in the paper.
    let transitions = 17usize;
    let liks: Vec<PairLikelihoods> = (0..transitions)
        .map(|t| {
            let mut log = vec![0.0f64; 65536];
            for (i, slot) in log.iter_mut().enumerate() {
                let x = (i as u64 + 1)
                    .wrapping_mul(t as u64 + 7)
                    .wrapping_mul(0x2545_F491);
                *slot = ((x >> 16) % 1000) as f64 / 300.0;
            }
            PairLikelihoods::from_log_values(log).unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("candidate_depth_algorithm2");
    group.sample_size(10);
    for n in [1usize, 64, 1024] {
        let config = ViterbiConfig {
            first_known: b'=',
            last_known: b';',
            candidates: n,
            charset: Charset::cookie(),
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| list_viterbi(std::hint::black_box(&liks), config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm1_depth, bench_algorithm2_depth);
criterion_main!(benches);
