//! Per-TSC keystream distribution models consumed by the attack.
//!
//! The Section-5 attack scores plaintext candidates against keystream
//! distributions *conditioned on the public TSC bytes* (Paterson et al.). The
//! attack code is agnostic about where those distributions come from:
//!
//! * empirically, from a `rc4-stats` per-TSC dataset (the faithful path —
//!   the paper spent 10 CPU-years on this, the reproduction uses a reduced key
//!   count and/or TSC1-only conditioning), or
//! * synthetically, for tests and fast simulations, by declaring per-class
//!   biased values directly.
//!
//! Either way the model is a table of per-class, per-position probability
//! vectors plus the class-index function.

use crate::{TkipError, Tsc};

/// How captured packets are mapped to keystream-distribution classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TscClassing {
    /// One class per `TSC1` value (256 classes) — laptop-scale default.
    Tsc1,
    /// One class per `(TSC0, TSC1)` pair (65536 classes) — paper scale.
    Tsc0Tsc1,
}

impl TscClassing {
    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            TscClassing::Tsc1 => 256,
            TscClassing::Tsc0Tsc1 => 65536,
        }
    }

    /// Class index of a TSC value.
    pub fn class_of(self, tsc: Tsc) -> usize {
        match self {
            TscClassing::Tsc1 => tsc.tsc1() as usize,
            TscClassing::Tsc0Tsc1 => ((tsc.tsc1() as usize) << 8) | tsc.tsc0() as usize,
        }
    }
}

/// A per-TSC-class keystream distribution model.
///
/// `probs[class][pos][value]` (flattened) is `Pr[Z_{pos+1} = value | class]`
/// where positions are indices into the modelled keystream window
/// `first_position ..= first_position + positions - 1` (1-based).
#[derive(Debug, Clone)]
pub struct TkipKeystreamModel {
    classing: TscClassing,
    first_position: usize,
    positions: usize,
    probs: Vec<f64>,
}

impl TkipKeystreamModel {
    /// Builds a model from raw per-class distributions.
    ///
    /// `probs` must contain `classes * positions * 256` entries, each group of
    /// 256 summing to (approximately) one.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::InvalidConfig`] if the dimensions are inconsistent.
    pub fn from_probabilities(
        classing: TscClassing,
        first_position: usize,
        positions: usize,
        probs: Vec<f64>,
    ) -> Result<Self, TkipError> {
        if first_position == 0 || positions == 0 {
            return Err(TkipError::InvalidConfig(
                "positions must be non-empty and 1-based".into(),
            ));
        }
        if probs.len() != classing.classes() * positions * 256 {
            return Err(TkipError::InvalidConfig(format!(
                "expected {} probabilities, got {}",
                classing.classes() * positions * 256,
                probs.len()
            )));
        }
        Ok(Self {
            classing,
            first_position,
            positions,
            probs,
        })
    }

    /// A uniform model (useful as a null baseline in ablations).
    pub fn uniform(classing: TscClassing, first_position: usize, positions: usize) -> Self {
        Self {
            classing,
            first_position,
            positions,
            probs: vec![1.0 / 256.0; classing.classes() * positions * 256],
        }
    }

    /// A synthetic model where, in every class, the keystream byte at each
    /// modelled position is biased towards a class-and-position-dependent value
    /// with relative strength `relative`.
    ///
    /// The biased value is `(class + position) mod 256`, which is public given
    /// the TSC — structurally the same situation as the real per-TSC biases,
    /// with controllable strength so tests and benches can trade realism for
    /// speed. This synthetic model is also used by the exact-mode simulator,
    /// which *samples keystream bytes from the same distributions*, so model
    /// and traffic are consistent by construction.
    pub fn synthetic(
        classing: TscClassing,
        first_position: usize,
        positions: usize,
        relative: f64,
    ) -> Self {
        let classes = classing.classes();
        let mut probs = vec![0.0f64; classes * positions * 256];
        for class in 0..classes {
            for pos in 0..positions {
                let favoured = ((class + first_position + pos) % 256) as u8;
                let base = 1.0 / (256.0 + relative);
                let start = (class * positions + pos) * 256;
                for v in 0..256 {
                    probs[start + v] = if v == favoured as usize {
                        base * (1.0 + relative)
                    } else {
                        base
                    };
                }
            }
        }
        Self {
            classing,
            first_position,
            positions,
            probs,
        }
    }

    /// The classing scheme of this model.
    pub fn classing(&self) -> TscClassing {
        self.classing
    }

    /// First modelled keystream position (1-based).
    pub fn first_position(&self) -> usize {
        self.first_position
    }

    /// Number of modelled positions.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// The 256-entry distribution of keystream position `position` (1-based,
    /// absolute) for packets in `class`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the modelled window.
    pub fn distribution(&self, class: usize, position: usize) -> &[f64] {
        assert!(
            position >= self.first_position && position < self.first_position + self.positions,
            "position {position} outside modelled window"
        );
        let pos = position - self.first_position;
        let start = (class * self.positions + pos) * 256;
        &self.probs[start..start + 256]
    }

    /// Class index of a TSC under this model's classing.
    pub fn class_of(&self, tsc: Tsc) -> usize {
        self.classing.class_of(tsc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classing_maps() {
        assert_eq!(TscClassing::Tsc1.classes(), 256);
        assert_eq!(TscClassing::Tsc0Tsc1.classes(), 65536);
        let tsc = Tsc(0x0000_0000_AB12);
        assert_eq!(TscClassing::Tsc1.class_of(tsc), 0xAB);
        assert_eq!(TscClassing::Tsc0Tsc1.class_of(tsc), 0xAB12);
    }

    #[test]
    fn uniform_model_distributions() {
        let m = TkipKeystreamModel::uniform(TscClassing::Tsc1, 49, 12);
        let d = m.distribution(5, 49);
        assert_eq!(d.len(), 256);
        assert!((d[0] - 1.0 / 256.0).abs() < 1e-15);
        assert_eq!(m.positions(), 12);
        assert_eq!(m.first_position(), 49);
    }

    #[test]
    fn synthetic_model_biases_expected_value() {
        let m = TkipKeystreamModel::synthetic(TscClassing::Tsc1, 10, 4, 0.5);
        // Class 3, absolute position 11 -> favoured value (3 + 11) % 256 = 14.
        let d = m.distribution(3, 11);
        let favoured = d[14];
        assert!(favoured > d[0]);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_probabilities_validation() {
        assert!(
            TkipKeystreamModel::from_probabilities(TscClassing::Tsc1, 1, 1, vec![0.0; 10]).is_err()
        );
        assert!(TkipKeystreamModel::from_probabilities(TscClassing::Tsc1, 0, 1, vec![]).is_err());
        let ok = TkipKeystreamModel::from_probabilities(
            TscClassing::Tsc1,
            1,
            1,
            vec![1.0 / 256.0; 256 * 256],
        );
        assert!(ok.is_ok());
    }

    #[test]
    #[should_panic(expected = "outside modelled window")]
    fn out_of_window_position_panics() {
        let m = TkipKeystreamModel::uniform(TscClassing::Tsc1, 49, 12);
        let _ = m.distribution(0, 61);
    }
}
