//! Traffic generation and capture simulation for the TKIP attack.
//!
//! In the live attack (Sect. 5.2/5.4) the attacker controls a TCP connection to
//! the victim and retransmits an identical TCP packet roughly 2500 times per
//! second; a Wi-Fi sniffer captures the TKIP-encrypted copies, each carrying a
//! fresh TSC and hence a fresh per-packet RC4 key. Retransmitted MPDUs (same
//! TSC seen twice) are filtered out. This module reproduces that pipeline as a
//! deterministic simulator so the attack code downstream is exercised against
//! the same kind of capture stream the real tool parsed out of a pcap file.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crypto_prims::michael::MichaelKey;

use crate::{
    keymix::TemporalKey,
    mpdu::{encapsulate, EncryptedMpdu, FrameAddressing},
    TkipError, Tsc,
};

/// Configuration of the injection/capture simulation.
#[derive(Debug, Clone)]
pub struct InjectionConfig {
    /// Packets injected (and captured) per second, e.g. 2500 in the paper's setup.
    pub packets_per_second: u64,
    /// Probability that a captured frame is an 802.11 retransmission (same TSC
    /// as the previous frame), which the capture tool must filter out.
    pub retransmission_rate: f64,
    /// Probability that a frame is lost by the sniffer and never captured.
    pub loss_rate: f64,
    /// RNG seed for the retransmission/loss process.
    pub seed: u64,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        Self {
            packets_per_second: 2500,
            retransmission_rate: 0.02,
            loss_rate: 0.01,
            seed: 0xF00D,
        }
    }
}

/// A captured, deduplicated encrypted packet as the attack tool sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capture {
    /// The TSC transmitted in clear.
    pub tsc: Tsc,
    /// The encrypted `payload || MIC || ICV` bytes.
    pub ciphertext: Vec<u8>,
}

/// Simulates a victim station repeatedly transmitting the *same* MSDU payload
/// under TKIP and an attacker sniffing the encrypted copies.
#[derive(Debug)]
pub struct InjectionSimulator {
    tk: TemporalKey,
    mic_key: MichaelKey,
    addressing: FrameAddressing,
    payload: Vec<u8>,
    next_tsc: Tsc,
    config: InjectionConfig,
    rng: StdRng,
    /// Number of frames put on the air (including retransmissions and lost frames).
    transmitted: u64,
}

impl InjectionSimulator {
    /// Creates a simulator for a fixed payload.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::InvalidConfig`] if the payload is empty or rates
    /// are outside `[0, 1)`.
    pub fn new(
        tk: TemporalKey,
        mic_key: MichaelKey,
        addressing: FrameAddressing,
        payload: Vec<u8>,
        config: InjectionConfig,
    ) -> Result<Self, TkipError> {
        if payload.is_empty() {
            return Err(TkipError::InvalidConfig("payload must not be empty".into()));
        }
        if !(0.0..1.0).contains(&config.retransmission_rate)
            || !(0.0..1.0).contains(&config.loss_rate)
        {
            return Err(TkipError::InvalidConfig(
                "retransmission and loss rates must be in [0, 1)".into(),
            ));
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(Self {
            tk,
            mic_key,
            addressing,
            payload,
            next_tsc: Tsc(1),
            config,
            rng,
            transmitted: 0,
        })
    }

    /// The plaintext payload every injected packet carries.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The frame addressing in use.
    pub fn addressing(&self) -> &FrameAddressing {
        &self.addressing
    }

    /// Total frames transmitted so far (including retransmissions and losses).
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Encrypts the payload under the next TSC and returns the on-air MPDU.
    fn transmit_one(&mut self) -> EncryptedMpdu {
        let tsc = self.next_tsc;
        self.next_tsc = self.next_tsc.next();
        self.transmitted += 1;
        encapsulate(&self.tk, self.mic_key, &self.addressing, tsc, &self.payload)
    }

    /// Captures the next `count` *unique* encrypted copies of the injected
    /// packet, filtering retransmissions by TSC exactly like the paper's tool.
    pub fn capture(&mut self, count: usize) -> Vec<Capture> {
        let mut out = Vec::with_capacity(count);
        let mut last_tsc: Option<Tsc> = None;
        while out.len() < count {
            let mpdu = self.transmit_one();
            // A retransmission re-sends the previous frame (same TSC); losses
            // drop the frame before the sniffer sees it.
            let retransmit = self.rng.gen_bool(self.config.retransmission_rate);
            let lost = self.rng.gen_bool(self.config.loss_rate);
            let effective_tsc = if retransmit {
                last_tsc.unwrap_or(mpdu.tsc)
            } else {
                mpdu.tsc
            };
            if lost {
                continue;
            }
            if Some(effective_tsc) == last_tsc {
                // Duplicate TSC: the capture tool filters it.
                continue;
            }
            last_tsc = Some(effective_tsc);
            out.push(Capture {
                tsc: mpdu.tsc,
                ciphertext: mpdu.ciphertext,
            });
        }
        out
    }

    /// Wall-clock seconds the real setup would need to gather `captures` unique
    /// captures at the configured packet rate.
    pub fn seconds_for(&self, captures: u64) -> f64 {
        let effective_rate = self.config.packets_per_second as f64
            * (1.0 - self.config.retransmission_rate)
            * (1.0 - self.config.loss_rate);
        captures as f64 / effective_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator(payload_len: usize) -> InjectionSimulator {
        InjectionSimulator::new(
            [9u8; 16],
            MichaelKey { l: 1, r: 2 },
            FrameAddressing {
                dst: [2; 6],
                src: [4; 6],
                transmitter: [4; 6],
                priority: 0,
            },
            vec![0xAB; payload_len],
            InjectionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn captures_have_unique_increasing_tsc() {
        let mut sim = simulator(55);
        let caps = sim.capture(200);
        assert_eq!(caps.len(), 200);
        for w in caps.windows(2) {
            assert!(
                w[1].tsc > w[0].tsc,
                "TSC must strictly increase after dedup"
            );
        }
        // All ciphertexts have payload + 12 trailer bytes.
        assert!(caps.iter().all(|c| c.ciphertext.len() == 55 + 12));
        // Losses/retransmissions mean more frames were transmitted than captured.
        assert!(sim.transmitted() >= 200);
    }

    #[test]
    fn different_captures_have_different_ciphertexts() {
        let mut sim = simulator(55);
        let caps = sim.capture(50);
        for w in caps.windows(2) {
            assert_ne!(w[0].ciphertext, w[1].ciphertext);
        }
    }

    #[test]
    fn config_validation() {
        let bad_payload = InjectionSimulator::new(
            [0; 16],
            MichaelKey { l: 0, r: 0 },
            FrameAddressing {
                dst: [0; 6],
                src: [0; 6],
                transmitter: [0; 6],
                priority: 0,
            },
            vec![],
            InjectionConfig::default(),
        );
        assert!(bad_payload.is_err());

        let bad_rate = InjectionSimulator::new(
            [0; 16],
            MichaelKey { l: 0, r: 0 },
            FrameAddressing {
                dst: [0; 6],
                src: [0; 6],
                transmitter: [0; 6],
                priority: 0,
            },
            vec![1],
            InjectionConfig {
                loss_rate: 1.5,
                ..InjectionConfig::default()
            },
        );
        assert!(bad_rate.is_err());
    }

    #[test]
    fn time_estimate_matches_paper_setup() {
        let sim = simulator(55);
        // 9.5 * 2^20 captures at ~2500 pkt/s is a bit over an hour, as in Sect. 5.4.
        let seconds = sim.seconds_for((9.5 * (1u64 << 20) as f64) as u64);
        let hours = seconds / 3600.0;
        assert!(hours > 1.0 && hours < 1.5, "estimated {hours} hours");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = simulator(20);
        let mut b = simulator(20);
        assert_eq!(a.capture(30), b.capture(30));
    }
}
