//! The TKIP key-mixing S-box.
//!
//! TKIP's phase-1/phase-2 mixing uses a 16-bit S-box built from the AES
//! (Rijndael) S-box: for input byte `i` with `s = AES_SBOX[i]`, the table entry
//! is `(xtime(s) << 8) | (s ^ xtime(s))` — i.e. the GF(2^8) multiples `2·s` and
//! `3·s` packed into one 16-bit word. The full 16-bit substitution is
//! `S(v) = T[lo(v)] ^ swap16(T[hi(v)])`.
//!
//! Rather than embedding a 256-entry magic table, this module derives the AES
//! S-box algebraically (multiplicative inverse in GF(2^8) followed by the
//! affine transform) and builds the TKIP table from it, which both documents
//! where the constants come from and gives the tests something independent to
//! check against.

use std::sync::OnceLock;

/// Multiplies by `x` (i.e. by 2) in GF(2^8) modulo the AES polynomial `x^8 + x^4 + x^3 + x + 1`.
#[inline]
pub fn xtime(b: u8) -> u8 {
    let shifted = (b as u16) << 1;
    let reduced = if b & 0x80 != 0 {
        shifted ^ 0x11B
    } else {
        shifted
    };
    reduced as u8
}

/// Multiplication in GF(2^8) with the AES reduction polynomial.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Computes the AES S-box entry for `x` from first principles.
fn aes_sbox_entry(x: u8) -> u8 {
    // Multiplicative inverse in GF(2^8); 0 maps to 0.
    let inv = if x == 0 {
        0
    } else {
        // Brute-force inverse: the field is tiny and this runs once at startup.
        (1u16..=255)
            .map(|c| c as u8)
            .find(|&c| gf_mul(x, c) == 1)
            .expect("every non-zero element has an inverse")
    };
    // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
    let b = inv;
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

/// The AES S-box (computed once).
pub fn aes_sbox() -> &'static [u8; 256] {
    static TABLE: OnceLock<[u8; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u8; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = aes_sbox_entry(i as u8);
        }
        t
    })
}

/// The TKIP 16-bit S-box table `T` (computed once from the AES S-box).
pub fn tkip_sbox_table() -> &'static [u16; 256] {
    static TABLE: OnceLock<[u16; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let aes = aes_sbox();
        let mut t = [0u16; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let s = aes[i];
            let two = xtime(s);
            let three = s ^ two;
            *slot = ((two as u16) << 8) | three as u16;
        }
        t
    })
}

/// The TKIP 16-bit substitution `S(v) = T[lo(v)] ^ swap16(T[hi(v)])`.
#[inline]
pub fn tkip_s(v: u16) -> u16 {
    let t = tkip_sbox_table();
    t[(v & 0xff) as usize] ^ t[(v >> 8) as usize].rotate_left(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_and_gf_mul() {
        assert_eq!(xtime(0x57), 0xAE);
        assert_eq!(xtime(0xAE), 0x47);
        // FIPS-197 example: 0x57 * 0x13 = 0xFE.
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        assert_eq!(gf_mul(0x57, 0x01), 0x57);
        assert_eq!(gf_mul(0x00, 0x13), 0x00);
    }

    #[test]
    fn aes_sbox_known_entries() {
        let s = aes_sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7C);
        assert_eq!(s[0x02], 0x77);
        assert_eq!(s[0x53], 0xED);
        assert_eq!(s[0xFF], 0x16);
    }

    #[test]
    fn aes_sbox_is_a_permutation() {
        let s = aes_sbox();
        let mut seen = [false; 256];
        for &v in s.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn tkip_table_known_entries() {
        // First entries of the 802.11 TKIP S-box: 0xC6A5, 0xF884, 0xEE99.
        let t = tkip_sbox_table();
        assert_eq!(t[0], 0xC6A5);
        assert_eq!(t[1], 0xF884);
        assert_eq!(t[2], 0xEE99);
    }

    #[test]
    fn tkip_s_mixes_both_bytes() {
        // Changing either input byte must change the output.
        let base = tkip_s(0x1234);
        assert_ne!(base, tkip_s(0x1235));
        assert_ne!(base, tkip_s(0x1334));
        // And the function is deterministic.
        assert_eq!(tkip_s(0xABCD), tkip_s(0xABCD));
    }
}
