//! The TKIP per-packet key mixing function (IEEE 802.11 temporal key hash).
//!
//! Each MPDU is encrypted with RC4 under a fresh 16-byte key derived from the
//! 128-bit temporal key (TK), the transmitter address (TA) and the 48-bit TKIP
//! sequence counter (TSC). The derivation runs in two phases:
//!
//! * **Phase 1** mixes TA, TK and the upper 32 TSC bits into an 80-bit TTAK;
//!   it only changes every 65536 packets.
//! * **Phase 2** mixes the TTAK, TK and the lower 16 TSC bits into the final
//!   16-byte RC4 key (the "WEP seed").
//!
//! Crucially for the attack, the first three output bytes are set directly from
//! the low TSC bytes — `K0 = TSC1`, `K1 = (TSC1 | 0x20) & 0x7f`, `K2 = TSC0` —
//! so they are public, which induces the strong TSC-dependent keystream biases
//! exploited in Section 5 (the remaining 13 bytes behave as uniformly random,
//! the standard modelling assumption the paper adopts).

use crate::{sbox::tkip_s, Tsc};

/// The 128-bit temporal encryption key.
pub type TemporalKey = [u8; 16];

/// The 80-bit phase-1 output (TTAK), five 16-bit words.
pub type Ttak = [u16; 5];

/// Number of phase-1 mixing iterations mandated by the standard.
const PHASE1_LOOP_COUNT: usize = 8;

#[inline]
fn mk16(hi: u8, lo: u8) -> u16 {
    ((hi as u16) << 8) | lo as u16
}

#[inline]
fn rotr1(v: u16) -> u16 {
    v.rotate_right(1)
}

/// Phase 1 of the TKIP key mixing: combines the temporal key, transmitter
/// address and the upper 32 bits of the TSC into the TTAK.
pub fn phase1(tk: &TemporalKey, ta: &[u8; 6], iv32: u32) -> Ttak {
    let mut ttak: Ttak = [
        (iv32 & 0xffff) as u16,
        (iv32 >> 16) as u16,
        mk16(ta[1], ta[0]),
        mk16(ta[3], ta[2]),
        mk16(ta[5], ta[4]),
    ];
    for i in 0..PHASE1_LOOP_COUNT {
        let j = 2 * (i & 1);
        ttak[0] = ttak[0].wrapping_add(tkip_s(ttak[4] ^ mk16(tk[1 + j], tk[j])));
        ttak[1] = ttak[1].wrapping_add(tkip_s(ttak[0] ^ mk16(tk[5 + j], tk[4 + j])));
        ttak[2] = ttak[2].wrapping_add(tkip_s(ttak[1] ^ mk16(tk[9 + j], tk[8 + j])));
        ttak[3] = ttak[3].wrapping_add(tkip_s(ttak[2] ^ mk16(tk[13 + j], tk[12 + j])));
        ttak[4] = ttak[4]
            .wrapping_add(tkip_s(ttak[3] ^ mk16(tk[1 + j], tk[j])))
            .wrapping_add(i as u16);
    }
    ttak
}

/// Phase 2 of the TKIP key mixing: produces the 16-byte per-packet RC4 key.
pub fn phase2(tk: &TemporalKey, ttak: &Ttak, iv16: u16) -> [u8; 16] {
    let mut ppk = [0u16; 6];
    ppk[..5].copy_from_slice(ttak);
    ppk[5] = ttak[4].wrapping_add(iv16);

    // Step 2 — 96-bit bijective mixing using the S-box.
    ppk[0] = ppk[0].wrapping_add(tkip_s(ppk[5] ^ mk16(tk[1], tk[0])));
    ppk[1] = ppk[1].wrapping_add(tkip_s(ppk[0] ^ mk16(tk[3], tk[2])));
    ppk[2] = ppk[2].wrapping_add(tkip_s(ppk[1] ^ mk16(tk[5], tk[4])));
    ppk[3] = ppk[3].wrapping_add(tkip_s(ppk[2] ^ mk16(tk[7], tk[6])));
    ppk[4] = ppk[4].wrapping_add(tkip_s(ppk[3] ^ mk16(tk[9], tk[8])));
    ppk[5] = ppk[5].wrapping_add(tkip_s(ppk[4] ^ mk16(tk[11], tk[10])));

    ppk[0] = ppk[0].wrapping_add(rotr1(ppk[5] ^ mk16(tk[13], tk[12])));
    ppk[1] = ppk[1].wrapping_add(rotr1(ppk[0] ^ mk16(tk[15], tk[14])));
    ppk[2] = ppk[2].wrapping_add(rotr1(ppk[1]));
    ppk[3] = ppk[3].wrapping_add(rotr1(ppk[2]));
    ppk[4] = ppk[4].wrapping_add(rotr1(ppk[3]));
    ppk[5] = ppk[5].wrapping_add(rotr1(ppk[4]));

    // Step 3 — assemble the RC4 key ("WEP seed").
    let hi = (iv16 >> 8) as u8;
    let lo = (iv16 & 0xff) as u8;
    let mut key = [0u8; 16];
    key[0] = hi;
    key[1] = (hi | 0x20) & 0x7f;
    key[2] = lo;
    key[3] = ((ppk[5] ^ mk16(tk[1], tk[0])) >> 1) as u8;
    for i in 0..6 {
        key[4 + 2 * i] = (ppk[i] & 0xff) as u8;
        key[5 + 2 * i] = (ppk[i] >> 8) as u8;
    }
    key
}

/// Computes the full per-packet RC4 key `K = KM(TA, TK, TSC)` for one MPDU.
///
/// This is the paper's `KM` function (Sect. 2.2). The first three bytes of the
/// result are a public function of the TSC.
///
/// # Examples
///
/// ```
/// use wpa_tkip::{keymix::mix_key, Tsc};
///
/// let tk = [7u8; 16];
/// let ta = [0x02, 0x00, 0x00, 0x00, 0x00, 0x01];
/// let key = mix_key(&tk, &ta, Tsc(0x0000_0000_1234));
/// // K0 = TSC1, K1 = (TSC1 | 0x20) & 0x7f, K2 = TSC0.
/// assert_eq!(&key[..3], &[0x12, 0x32, 0x34]);
/// ```
pub fn mix_key(tk: &TemporalKey, ta: &[u8; 6], tsc: Tsc) -> [u8; 16] {
    let ttak = phase1(tk, ta, tsc.iv32());
    phase2(tk, &ttak, tsc.iv16())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TK: TemporalKey = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    const TA: [u8; 6] = [0x10, 0x22, 0x33, 0x44, 0x55, 0x66];

    #[test]
    fn key_prefix_is_public_function_of_tsc() {
        for raw in [0u64, 1, 0x55AA, 0x0102_0304_0506, 0xFFFF_FFFF_FFFF] {
            let tsc = Tsc(raw);
            let key = mix_key(&TK, &TA, tsc);
            assert_eq!(key[0], tsc.tsc1());
            assert_eq!(key[1], (tsc.tsc1() | 0x20) & 0x7f);
            assert_eq!(key[2], tsc.tsc0());
        }
    }

    #[test]
    fn phase1_only_depends_on_iv32() {
        let t1 = phase1(&TK, &TA, 0x1111_2222);
        let t2 = phase1(&TK, &TA, 0x1111_2222);
        assert_eq!(t1, t2);
        let t3 = phase1(&TK, &TA, 0x1111_2223);
        assert_ne!(t1, t3);
    }

    #[test]
    fn mixing_is_deterministic_and_sensitive() {
        let a = mix_key(&TK, &TA, Tsc(42));
        assert_eq!(a, mix_key(&TK, &TA, Tsc(42)));
        // Different TSC, TK or TA must change the non-public key bytes.
        let b = mix_key(&TK, &TA, Tsc(43));
        assert_ne!(a[3..], b[3..]);
        let mut other_tk = TK;
        other_tk[15] ^= 1;
        let c = mix_key(&other_tk, &TA, Tsc(42));
        assert_ne!(a[3..], c[3..]);
        let mut other_ta = TA;
        other_ta[0] ^= 1;
        let d = mix_key(&TK, &other_ta, Tsc(42));
        assert_ne!(a[3..], d[3..]);
    }

    #[test]
    fn key_bytes_look_well_distributed() {
        // Over many TSC values, each of the 13 secret key bytes should take many
        // distinct values (the attack models them as uniformly random).
        let mut distinct = [[false; 256]; 13];
        for t in 0..2000u64 {
            let key = mix_key(&TK, &TA, Tsc(t * 7919));
            for (i, seen) in distinct.iter_mut().enumerate() {
                seen[key[3 + i] as usize] = true;
            }
        }
        for (i, seen) in distinct.iter().enumerate() {
            let count = seen.iter().filter(|&&s| s).count();
            assert!(count > 200, "key byte {} hit only {count} values", i + 3);
        }
    }

    #[test]
    fn consecutive_tsc_share_phase1_within_a_window() {
        // IV32 is constant across 65536 consecutive TSC values, so phase 1 agrees.
        let tsc_a = Tsc(0x0001_0000_0005);
        let tsc_b = Tsc(0x0001_0000_FFFF);
        assert_eq!(tsc_a.iv32(), tsc_b.iv32());
        assert_eq!(
            phase1(&TK, &TA, tsc_a.iv32()),
            phase1(&TK, &TA, tsc_b.iv32())
        );
        // But the final keys still differ because IV16 differs.
        assert_ne!(mix_key(&TK, &TA, tsc_a), mix_key(&TK, &TA, tsc_b));
    }
}
