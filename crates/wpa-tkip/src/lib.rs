//! WPA-TKIP substrate and the Section-5 attack.
//!
//! The paper's first attack decrypts a complete TKIP-protected packet from
//! nothing but captured ciphertexts and then inverts the Michael MIC to obtain
//! the MIC key, enabling packet injection and decryption. Reproducing it
//! requires the full TKIP encapsulation stack, which this crate builds from
//! scratch:
//!
//! * [`sbox`] / [`keymix`] — the TKIP per-packet key mixing function (phase 1
//!   and phase 2, with the S-box derived from the AES S-box), so per-packet
//!   RC4 keys have exactly the structure the attack exploits: the first three
//!   key bytes are a public function of the TKIP sequence counter (TSC).
//! * [`net`] — LLC/SNAP, IPv4 and TCP encoding with checksums; the packet the
//!   attacker injects is an ordinary TCP segment and the attack later uses
//!   these checksums to prune candidates for unknown header fields.
//! * [`mpdu`] — TKIP MSDU/MPDU encapsulation: Michael MIC computation over the
//!   Michael header + payload, ICV (CRC-32) appending, RC4 encryption under
//!   the mixed per-packet key, and the corresponding decapsulation/validation.
//! * [`injection`] — the traffic-generation substrate standing in for the
//!   paper's live setup (a malicious server retransmitting identical TCP
//!   packets at ~2500 packets/second while a sniffer captures them).
//! * [`model`] — per-TSC keystream distribution models consumed by the attack
//!   (built from empirical statistics or synthetic for tests).
//! * [`attack`] — the attack itself: per-TSC single-byte likelihoods over the
//!   12 unknown trailer bytes (8-byte MIC + 4-byte ICV), Algorithm-1 candidate
//!   generation, CRC-based pruning, Michael key inversion, and the checksum
//!   based recovery of unknown IP/TCP header fields.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod injection;
pub mod keymix;
pub mod model;
pub mod mpdu;
pub mod net;
pub mod sbox;

/// Errors produced by the TKIP substrate and attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TkipError {
    /// A frame failed integrity validation (ICV or MIC mismatch).
    IntegrityFailure(&'static str),
    /// Malformed or truncated input.
    Malformed(String),
    /// Invalid configuration (bad lengths, empty captures, ...).
    InvalidConfig(String),
    /// The attack did not find any candidate satisfying the integrity checks.
    AttackFailed(String),
}

impl core::fmt::Display for TkipError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TkipError::IntegrityFailure(what) => write!(f, "integrity check failed: {what}"),
            TkipError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            TkipError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TkipError::AttackFailed(msg) => write!(f, "attack failed: {msg}"),
        }
    }
}

impl std::error::Error for TkipError {}

/// A 48-bit TKIP sequence counter.
///
/// The TSC is incremented per MPDU, transmitted in the clear in the extended
/// IV fields, and feeds the per-packet key mixing. Its two least-significant
/// bytes determine the first three RC4 key bytes, which is the root cause of
/// the per-TSC keystream biases the attack exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tsc(pub u64);

impl Tsc {
    /// Maximum representable TSC value (48 bits).
    pub const MAX: Tsc = Tsc(0xFFFF_FFFF_FFFF);

    /// The least-significant byte, `TSC0`.
    pub fn tsc0(self) -> u8 {
        (self.0 & 0xff) as u8
    }

    /// The second least-significant byte, `TSC1`.
    pub fn tsc1(self) -> u8 {
        ((self.0 >> 8) & 0xff) as u8
    }

    /// The low 16 bits (`IV16` in the key mixing).
    pub fn iv16(self) -> u16 {
        (self.0 & 0xffff) as u16
    }

    /// The high 32 bits (`IV32` in the key mixing).
    pub fn iv32(self) -> u32 {
        ((self.0 >> 16) & 0xffff_ffff) as u32
    }

    /// The next sequence counter value (wrapping at 48 bits).
    pub fn next(self) -> Tsc {
        Tsc((self.0 + 1) & Self::MAX.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_byte_extraction() {
        let tsc = Tsc(0x0000_1234_5678);
        assert_eq!(tsc.tsc0(), 0x78);
        assert_eq!(tsc.tsc1(), 0x56);
        assert_eq!(tsc.iv16(), 0x5678);
        assert_eq!(tsc.iv32(), 0x1234);
    }

    #[test]
    fn tsc_increment_wraps_at_48_bits() {
        assert_eq!(Tsc(5).next(), Tsc(6));
        assert_eq!(Tsc::MAX.next(), Tsc(0));
    }

    #[test]
    fn error_display() {
        assert!(TkipError::IntegrityFailure("ICV")
            .to_string()
            .contains("ICV"));
        assert!(TkipError::AttackFailed("no candidate".into())
            .to_string()
            .contains("no candidate"));
    }
}
