//! Network packet encoding: LLC/SNAP, IPv4 and TCP with checksums.
//!
//! The packet the attacker injects (Sect. 5.2) is an ordinary TCP segment with
//! a 7-byte payload, carried in an 802.11 data frame as
//! `LLC/SNAP || IPv4 || TCP || payload`. The attack later relies on the IP and
//! TCP checksums twice: to *know* most plaintext bytes of the injected packet,
//! and to recover the few unknown header fields (TTL, internal address, source
//! port) by candidate pruning. This module provides the encoders, checksum
//! routines and parsers those steps need.

use crate::TkipError;

/// The 8-byte LLC/SNAP header announcing an IPv4 payload.
pub const LLC_SNAP_IPV4: [u8; 8] = [0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00];

/// Length of the combined LLC/SNAP + IPv4 + TCP headers (without TCP options).
pub const HEADERS_LEN: usize = 8 + 20 + 20;

/// The Internet checksum (RFC 1071) over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A minimal IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Total length of the IP datagram (header + payload).
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits).
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Upper-layer protocol (6 = TCP).
    pub protocol: u8,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
}

impl Ipv4Header {
    /// Creates a TCP-carrying header with common defaults.
    pub fn tcp(src: [u8; 4], dst: [u8; 4], payload_len: u16, ttl: u8) -> Self {
        Self {
            tos: 0,
            total_length: 20 + 20 + payload_len,
            identification: 0,
            flags_fragment: 0x4000, // don't fragment
            ttl,
            protocol: 6,
            src,
            dst,
        }
    }

    /// Encodes the header with a correct checksum.
    pub fn encode(&self) -> [u8; 20] {
        let mut h = [0u8; 20];
        h[0] = 0x45; // version 4, IHL 5
        h[1] = self.tos;
        h[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        h[4..6].copy_from_slice(&self.identification.to_be_bytes());
        h[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        h[8] = self.ttl;
        h[9] = self.protocol;
        // checksum zero for computation
        h[12..16].copy_from_slice(&self.src);
        h[16..20].copy_from_slice(&self.dst);
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        h
    }

    /// Parses and validates an encoded header.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::Malformed`] on truncated input or an unsupported
    /// IHL, and [`TkipError::IntegrityFailure`] when the checksum is wrong.
    pub fn parse(bytes: &[u8]) -> Result<Self, TkipError> {
        if bytes.len() < 20 {
            return Err(TkipError::Malformed("IPv4 header too short".into()));
        }
        if bytes[0] != 0x45 {
            return Err(TkipError::Malformed(format!(
                "unsupported version/IHL byte 0x{:02x}",
                bytes[0]
            )));
        }
        if internet_checksum(&bytes[..20]) != 0 {
            return Err(TkipError::IntegrityFailure("IPv4 checksum"));
        }
        Ok(Self {
            tos: bytes[1],
            total_length: u16::from_be_bytes([bytes[2], bytes[3]]),
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            flags_fragment: u16::from_be_bytes([bytes[6], bytes[7]]),
            ttl: bytes[8],
            protocol: bytes[9],
            src: [bytes[12], bytes[13], bytes[14], bytes[15]],
            dst: [bytes[16], bytes[17], bytes[18], bytes[19]],
        })
    }
}

/// A minimal TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// TCP flags (the low 6 bits: URG/ACK/PSH/RST/SYN/FIN).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Encodes the header with a correct checksum for the given addresses and payload.
    pub fn encode(&self, src_ip: [u8; 4], dst_ip: [u8; 4], payload: &[u8]) -> [u8; 20] {
        let mut h = [0u8; 20];
        h[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        h[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        h[4..8].copy_from_slice(&self.seq.to_be_bytes());
        h[8..12].copy_from_slice(&self.ack.to_be_bytes());
        h[12] = 5 << 4; // data offset 5 words
        h[13] = self.flags;
        h[14..16].copy_from_slice(&self.window.to_be_bytes());
        let csum = Self::checksum(&h, src_ip, dst_ip, payload);
        h[16..18].copy_from_slice(&csum.to_be_bytes());
        h
    }

    /// Computes the TCP checksum (pseudo-header + header + payload) for a header
    /// whose checksum field is zero.
    pub fn checksum(header: &[u8; 20], src_ip: [u8; 4], dst_ip: [u8; 4], payload: &[u8]) -> u16 {
        let tcp_len = (20 + payload.len()) as u16;
        let mut buf = Vec::with_capacity(12 + 20 + payload.len());
        buf.extend_from_slice(&src_ip);
        buf.extend_from_slice(&dst_ip);
        buf.push(0);
        buf.push(6);
        buf.extend_from_slice(&tcp_len.to_be_bytes());
        buf.extend_from_slice(header);
        buf.extend_from_slice(payload);
        internet_checksum(&buf)
    }

    /// Parses an encoded TCP header and verifies its checksum.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::Malformed`] on truncated input and
    /// [`TkipError::IntegrityFailure`] when the checksum does not verify.
    pub fn parse(
        bytes: &[u8],
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        payload: &[u8],
    ) -> Result<Self, TkipError> {
        if bytes.len() < 20 {
            return Err(TkipError::Malformed("TCP header too short".into()));
        }
        let mut zeroed: [u8; 20] = bytes[..20].try_into().expect("length checked");
        let wire_csum = u16::from_be_bytes([zeroed[16], zeroed[17]]);
        zeroed[16] = 0;
        zeroed[17] = 0;
        if Self::checksum(&zeroed, src_ip, dst_ip, payload) != wire_csum {
            return Err(TkipError::IntegrityFailure("TCP checksum"));
        }
        Ok(Self {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
        })
    }
}

/// Builds the plaintext MSDU payload `LLC/SNAP || IPv4 || TCP || payload` for a
/// TCP segment from `src` to `dst`.
pub fn build_tcp_msdu(ip: &Ipv4Header, tcp: &TcpHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADERS_LEN + payload.len());
    out.extend_from_slice(&LLC_SNAP_IPV4);
    out.extend_from_slice(&ip.encode());
    out.extend_from_slice(&tcp.encode(ip.src, ip.dst, payload));
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet_checksum_rfc1071_example() {
        // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
        // Odd-length input pads with zero.
        assert_eq!(internet_checksum(&[0xff]), !0xff00u16);
    }

    #[test]
    fn ipv4_roundtrip_and_validation() {
        let hdr = Ipv4Header::tcp([192, 168, 1, 2], [203, 0, 113, 5], 7, 64);
        let enc = hdr.encode();
        // A correctly encoded header checksums to zero.
        assert_eq!(internet_checksum(&enc), 0);
        let parsed = Ipv4Header::parse(&enc).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(parsed.total_length, 47);

        let mut corrupted = enc;
        corrupted[8] ^= 1; // flip TTL
        assert_eq!(
            Ipv4Header::parse(&corrupted).unwrap_err(),
            TkipError::IntegrityFailure("IPv4 checksum")
        );
        assert!(Ipv4Header::parse(&enc[..10]).is_err());
    }

    #[test]
    fn tcp_roundtrip_and_validation() {
        let tcp = TcpHeader {
            src_port: 52100,
            dst_port: 80,
            seq: 0x1234_5678,
            ack: 0x9abc_def0,
            flags: 0x18, // PSH|ACK
            window: 29200,
        };
        let src = [192, 168, 1, 2];
        let dst = [203, 0, 113, 5];
        let payload = b"ABCDEFG";
        let enc = tcp.encode(src, dst, payload);
        let parsed = TcpHeader::parse(&enc, src, dst, payload).unwrap();
        assert_eq!(parsed, tcp);

        // Any change to the payload or ports must break the checksum.
        assert!(TcpHeader::parse(&enc, src, dst, b"ABCDEFX").is_err());
        let mut corrupted = enc;
        corrupted[0] ^= 1;
        assert!(TcpHeader::parse(&corrupted, src, dst, payload).is_err());
    }

    #[test]
    fn msdu_layout() {
        let ip = Ipv4Header::tcp([10, 0, 0, 2], [198, 51, 100, 7], 7, 64);
        let tcp = TcpHeader {
            src_port: 40000,
            dst_port: 8080,
            seq: 1,
            ack: 1,
            flags: 0x18,
            window: 1024,
        };
        let msdu = build_tcp_msdu(&ip, &tcp, b"payload");
        assert_eq!(msdu.len(), HEADERS_LEN + 7);
        assert_eq!(&msdu[..8], &LLC_SNAP_IPV4);
        assert_eq!(msdu[8], 0x45);
        // The paper's observation: with a 7-byte payload the MIC starts at
        // position 56 in the RC4 stream (1-based), i.e. byte index 55.
        assert_eq!(msdu.len() + 1, 56);
    }
}
