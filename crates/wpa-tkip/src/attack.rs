//! The Section-5 attack: decrypting an injected TKIP packet and recovering the
//! Michael MIC key.
//!
//! Pipeline (Sect. 5.3):
//!
//! 1. Collect many encrypted copies of the injected packet. All plaintext bytes
//!    except the 8-byte MIC and 4-byte ICV trailer are known to the attacker.
//! 2. For each of the 12 unknown trailer positions, accumulate per-TSC-class
//!    ciphertext byte counts and convert them into single-byte plaintext
//!    likelihoods against the per-TSC keystream model (Paterson-style).
//! 3. Generate plaintext candidates in decreasing likelihood (Algorithm 1) and
//!    prune them with the CRC-32 consistency check between the candidate MIC
//!    and candidate ICV.
//! 4. From the surviving candidate, invert Michael to obtain the MIC key.
//!
//! The same candidate-plus-checksum idea recovers unknown IP/TCP header fields
//! (TTL, internal address, source port); [`recover_ipv4_fields`] implements
//! that variant against the IP header checksum.

use plaintext_recovery::{
    candidates::{generate_candidates, Candidate},
    charset::Charset,
    counts::SingleCounts,
    likelihood::SingleLikelihoods,
};

use crypto_prims::michael::MichaelKey;

use crate::{
    injection::Capture,
    model::TkipKeystreamModel,
    mpdu::{derive_mic_key, trailer_is_consistent, FrameAddressing, TRAILER_LEN},
    net::{internet_checksum, Ipv4Header},
    TkipError,
};

/// Configuration of the MIC-key recovery attack.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Maximum number of plaintext candidates to generate and test against the ICV.
    ///
    /// The paper uses nearly `2^30`; reduced values trade success rate for time.
    pub max_candidates: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            max_candidates: 1 << 20,
        }
    }
}

/// Outcome of a successful MIC-key recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// The recovered 12-byte trailer (MIC followed by ICV).
    pub trailer: [u8; TRAILER_LEN],
    /// The recovered Michael MIC key.
    pub mic_key: MichaelKey,
    /// Position (0-based) in the candidate list at which the consistent
    /// candidate was found — the quantity plotted in Fig. 9.
    pub candidate_index: usize,
    /// Number of candidates generated.
    pub candidates_tested: usize,
}

/// Accumulated per-TSC-class ciphertext statistics for the 12 trailer bytes.
#[derive(Debug, Clone)]
pub struct TrailerStatistics {
    /// One [`SingleCounts`] per TSC class, each tracking the 12 trailer positions.
    class_counts: Vec<SingleCounts>,
    /// 1-based keystream position of the first trailer byte.
    first_position: usize,
    captures: u64,
}

impl TrailerStatistics {
    /// Creates empty statistics for captures whose known payload has `payload_len` bytes.
    ///
    /// The trailer then occupies keystream positions
    /// `payload_len + 1 ..= payload_len + 12`.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::InvalidConfig`] if `classes == 0`.
    pub fn new(classes: usize, payload_len: usize) -> Result<Self, TkipError> {
        if classes == 0 {
            return Err(TkipError::InvalidConfig(
                "need at least one TSC class".into(),
            ));
        }
        let first_position = payload_len + 1;
        let positions: Vec<u64> = (0..TRAILER_LEN as u64)
            .map(|i| first_position as u64 + i)
            .collect();
        let class_counts = (0..classes)
            .map(|_| SingleCounts::new(positions.clone()).expect("positions are valid"))
            .collect();
        Ok(Self {
            class_counts,
            first_position,
            captures: 0,
        })
    }

    /// 1-based keystream position of the first trailer byte.
    pub fn first_position(&self) -> usize {
        self.first_position
    }

    /// Number of captures accumulated.
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Adds one capture. The ciphertext must be `payload_len + 12` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::Malformed`] when the ciphertext has the wrong length
    /// and [`TkipError::InvalidConfig`] when the class index is out of range.
    pub fn add(&mut self, class: usize, ciphertext: &[u8]) -> Result<(), TkipError> {
        if ciphertext.len() != self.first_position - 1 + TRAILER_LEN {
            return Err(TkipError::Malformed(format!(
                "expected ciphertext of {} bytes, got {}",
                self.first_position - 1 + TRAILER_LEN,
                ciphertext.len()
            )));
        }
        let counts = self
            .class_counts
            .get_mut(class)
            .ok_or_else(|| TkipError::InvalidConfig(format!("TSC class {class} out of range")))?;
        for (idx, &byte) in ciphertext[self.first_position - 1..].iter().enumerate() {
            counts.record_byte(idx, byte);
        }
        counts.add_ciphertexts(1);
        self.captures += 1;
        Ok(())
    }

    /// Accumulates a batch of [`Capture`]s using the model's TSC classing.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`TrailerStatistics::add`].
    pub fn add_captures(
        &mut self,
        captures: &[Capture],
        model: &TkipKeystreamModel,
    ) -> Result<(), TkipError> {
        for cap in captures {
            self.add(model.class_of(cap.tsc), &cap.ciphertext)?;
        }
        Ok(())
    }

    /// Computes the combined single-byte plaintext likelihoods for each trailer
    /// position by summing per-class log-likelihoods against the model.
    ///
    /// # Errors
    ///
    /// Returns [`TkipError::InvalidConfig`] if the model does not cover the
    /// trailer positions.
    pub fn likelihoods(
        &self,
        model: &TkipKeystreamModel,
    ) -> Result<Vec<SingleLikelihoods>, TkipError> {
        let last_needed = self.first_position + TRAILER_LEN - 1;
        if model.first_position() > self.first_position
            || model.first_position() + model.positions() <= last_needed
        {
            return Err(TkipError::InvalidConfig(format!(
                "keystream model covers positions {}..{} but the trailer needs {}..{}",
                model.first_position(),
                model.first_position() + model.positions() - 1,
                self.first_position,
                last_needed
            )));
        }
        let mut out = Vec::with_capacity(TRAILER_LEN);
        for idx in 0..TRAILER_LEN {
            let position = self.first_position + idx;
            let mut combined = SingleLikelihoods::flat();
            for (class, counts) in self.class_counts.iter().enumerate() {
                if counts.ciphertexts() == 0 {
                    continue;
                }
                let dist = model.distribution(class, position);
                let lik = SingleLikelihoods::from_counts(counts.counts_at(idx), dist)
                    .map_err(|e| TkipError::InvalidConfig(e.to_string()))?;
                combined.combine(&lik);
            }
            out.push(combined);
        }
        Ok(out)
    }
}

/// Runs the full MIC-key recovery: likelihoods → candidate list → ICV pruning →
/// Michael inversion.
///
/// `known_payload` is the plaintext MSDU body of the injected packet (which the
/// attacker chose or reconstructed), `addressing` the frame addressing needed
/// for the Michael header.
///
/// # Errors
///
/// * [`TkipError::InvalidConfig`] for empty statistics or a model/position mismatch.
/// * [`TkipError::AttackFailed`] when no candidate within the budget satisfies
///   the ICV consistency check.
pub fn recover_mic_key(
    stats: &TrailerStatistics,
    model: &TkipKeystreamModel,
    known_payload: &[u8],
    addressing: &FrameAddressing,
    config: &AttackConfig,
) -> Result<AttackOutcome, TkipError> {
    if stats.captures() == 0 {
        return Err(TkipError::InvalidConfig(
            "no captures were accumulated".into(),
        ));
    }
    if known_payload.len() + 1 != stats.first_position() {
        return Err(TkipError::InvalidConfig(format!(
            "payload length {} inconsistent with trailer position {}",
            known_payload.len(),
            stats.first_position()
        )));
    }
    let likelihoods = stats.likelihoods(model)?;
    let candidates = generate_candidates(&likelihoods, config.max_candidates, &Charset::full())
        .map_err(|e| TkipError::InvalidConfig(e.to_string()))?;
    match find_consistent_candidate(&candidates, known_payload) {
        Some((index, trailer)) => {
            let mic: [u8; 8] = trailer[..8].try_into().expect("trailer has 12 bytes");
            let mic_key = derive_mic_key(addressing, known_payload, &mic);
            Ok(AttackOutcome {
                trailer,
                mic_key,
                candidate_index: index,
                candidates_tested: candidates.len(),
            })
        }
        None => Err(TkipError::AttackFailed(format!(
            "no ICV-consistent candidate among {}",
            candidates.len()
        ))),
    }
}

/// Scans a candidate list for the first trailer whose ICV is consistent with the
/// known payload, returning its index and value.
pub fn find_consistent_candidate(
    candidates: &[Candidate],
    known_payload: &[u8],
) -> Option<(usize, [u8; TRAILER_LEN])> {
    for (index, cand) in candidates.iter().enumerate() {
        if cand.plaintext.len() != TRAILER_LEN {
            continue;
        }
        let trailer: [u8; TRAILER_LEN] = cand.plaintext[..].try_into().expect("length checked");
        if trailer_is_consistent(known_payload, &trailer) {
            return Some((index, trailer));
        }
    }
    None
}

/// Recovers unknown IPv4 header fields (TTL and the two unknown source-address
/// bytes of a NATed client) by candidate generation pruned with the IP header
/// checksum, mirroring Sect. 5.3's observation that the header checksums make
/// the "unknown field" problem the same problem as the MIC/ICV one.
///
/// `template` is the header with the unknown fields zeroed; `likelihoods` are
/// single-byte likelihoods for the unknown bytes in the order
/// `[TTL, src[2], src[3]]`; the checksum field of the template must contain the
/// value observed on the wire (it is part of the known plaintext).
///
/// # Errors
///
/// * [`TkipError::InvalidConfig`] when the likelihood count is not 3.
/// * [`TkipError::AttackFailed`] when no candidate matches the checksum.
pub fn recover_ipv4_fields(
    template: &Ipv4Header,
    wire_checksum: u16,
    likelihoods: &[SingleLikelihoods],
    max_candidates: usize,
) -> Result<(u8, [u8; 4]), TkipError> {
    if likelihoods.len() != 3 {
        return Err(TkipError::InvalidConfig(
            "expected likelihoods for TTL and two source-address bytes".into(),
        ));
    }
    let candidates = generate_candidates(likelihoods, max_candidates, &Charset::full())
        .map_err(|e| TkipError::InvalidConfig(e.to_string()))?;
    for cand in &candidates {
        let ttl = cand.plaintext[0];
        let mut src = template.src;
        src[2] = cand.plaintext[1];
        src[3] = cand.plaintext[2];
        let trial = Ipv4Header {
            ttl,
            src,
            ..*template
        };
        let mut encoded = trial.encode();
        // `encode` wrote a fresh checksum; compare the checksum computed over the
        // candidate header against the one observed on the wire.
        let computed = u16::from_be_bytes([encoded[10], encoded[11]]);
        if computed == wire_checksum {
            encoded[10] = 0;
            encoded[11] = 0;
            debug_assert_eq!(internet_checksum(&encoded), computed);
            return Ok((ttl, src));
        }
    }
    Err(TkipError::AttackFailed(
        "no candidate matches the IP checksum".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        injection::{InjectionConfig, InjectionSimulator},
        model::TscClassing,
        mpdu::encapsulate,
        Tsc,
    };
    use plaintext_recovery::likelihood::SingleLikelihoods;

    fn addressing() -> FrameAddressing {
        FrameAddressing {
            dst: [0x00, 0x0c, 0x29, 0x01, 0x02, 0x03],
            src: [0x00, 0x0c, 0x29, 0xaa, 0xbb, 0xcc],
            transmitter: [0x00, 0x0c, 0x29, 0xaa, 0xbb, 0xcc],
            priority: 0,
        }
    }

    #[test]
    fn trailer_statistics_accumulate() {
        let mut stats = TrailerStatistics::new(256, 55).unwrap();
        assert_eq!(stats.first_position(), 56);
        let ct = vec![0x5Au8; 55 + 12];
        stats.add(3, &ct).unwrap();
        stats.add(3, &ct).unwrap();
        assert_eq!(stats.captures(), 2);
        assert!(stats.add(3, &ct[..20]).is_err());
        assert!(stats.add(999, &ct).is_err());
        assert!(TrailerStatistics::new(0, 55).is_err());
    }

    #[test]
    fn likelihoods_require_covering_model() {
        let stats = TrailerStatistics::new(256, 55).unwrap();
        let too_short = TkipKeystreamModel::uniform(TscClassing::Tsc1, 56, 4);
        assert!(stats.likelihoods(&too_short).is_err());
        let covering = TkipKeystreamModel::uniform(TscClassing::Tsc1, 49, 20);
        // No captures yet -> flat likelihoods, but the call itself succeeds.
        let liks = stats.likelihoods(&covering).unwrap();
        assert_eq!(liks.len(), TRAILER_LEN);
    }

    /// End-to-end attack against a synthetic keystream model: captures are
    /// generated so that the keystream actually follows the model (the "genie"
    /// simulation the paper's Fig. 8 success-rate curves are built from),
    /// with an exaggerated bias so the test needs only a few thousand captures.
    #[test]
    fn recovers_mic_key_with_synthetic_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};

        let payload: Vec<u8> = (0..55u8).collect();
        let addressing = addressing();
        let mic_key = MichaelKey {
            l: 0x1337_BEEF,
            r: 0x0BAD_F00D,
        };

        // Build the true trailer for this payload.
        let mut mic_input = Vec::new();
        mic_input.extend_from_slice(&addressing.michael_header());
        mic_input.extend_from_slice(&payload);
        let mic = crypto_prims::michael::michael(mic_key, &mic_input);
        let mut body = payload.clone();
        body.extend_from_slice(&mic);
        let icv = crypto_prims::crc32::icv(&body);
        let mut plaintext_frame = body.clone();
        plaintext_frame.extend_from_slice(&icv);

        // Synthetic per-TSC model with a strong bias, covering the trailer.
        let model = TkipKeystreamModel::synthetic(TscClassing::Tsc1, 56, 12, 4.0);

        // Sample keystream bytes from the model per capture and encrypt the trailer.
        let mut stats = TrailerStatistics::new(256, payload.len()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xA77AC);
        let captures = 6_000u64;
        for i in 0..captures {
            let tsc = Tsc(i + 1);
            let class = model.class_of(tsc);
            let mut ct = vec![0u8; payload.len() + 12];
            // Known payload bytes: their ciphertext values are irrelevant to the stats.
            for (idx, slot) in ct.iter_mut().enumerate().take(payload.len()) {
                *slot = idx as u8;
            }
            for idx in 0..12 {
                let dist = model.distribution(class, 56 + idx);
                let mut u: f64 = rng.gen();
                let mut z = 255u8;
                for (v, &p) in dist.iter().enumerate() {
                    if u < p {
                        z = v as u8;
                        break;
                    }
                    u -= p;
                }
                ct[payload.len() + idx] = plaintext_frame[payload.len() + idx] ^ z;
            }
            stats.add(class, &ct).unwrap();
        }

        let outcome = recover_mic_key(
            &stats,
            &model,
            &payload,
            &addressing,
            &AttackConfig {
                max_candidates: 1 << 12,
            },
        )
        .unwrap();
        assert_eq!(outcome.mic_key, mic_key);
        assert_eq!(&outcome.trailer[..8], &mic);
        assert_eq!(&outcome.trailer[8..], &icv);
        assert!(outcome.candidate_index < outcome.candidates_tested);
    }

    #[test]
    fn attack_fails_gracefully_without_signal() {
        // Uniform model and uniform captures: no candidate will be preferred and
        // the ICV check will almost surely fail within a tiny budget.
        let payload: Vec<u8> = vec![7u8; 55];
        let model = TkipKeystreamModel::uniform(TscClassing::Tsc1, 56, 12);
        let mut stats = TrailerStatistics::new(256, 55).unwrap();
        let ct = vec![0xAAu8; 55 + 12];
        stats.add(0, &ct).unwrap();
        let result = recover_mic_key(
            &stats,
            &model,
            &payload,
            &addressing(),
            &AttackConfig { max_candidates: 4 },
        );
        assert!(matches!(result, Err(TkipError::AttackFailed(_))));

        // And with no captures at all the configuration is rejected.
        let empty = TrailerStatistics::new(256, 55).unwrap();
        assert!(matches!(
            recover_mic_key(
                &empty,
                &model,
                &payload,
                &addressing(),
                &AttackConfig::default()
            ),
            Err(TkipError::InvalidConfig(_))
        ));
    }

    #[test]
    fn end_to_end_with_real_tkip_frames_and_genie_trailer_knowledge() {
        // Sanity-check the plumbing against *real* TKIP encapsulation: capture
        // genuine frames, then hand the attack a "genie" model built from the
        // true keystream trailer bytes of those frames. With the genie model the
        // top candidate must be the true trailer, proving the statistics,
        // likelihood and pruning plumbing agree with the real encapsulation.
        let payload: Vec<u8> = (0..55u8).map(|i| i.wrapping_mul(3)).collect();
        let tk = [0x77u8; 16];
        let mic_key = MichaelKey { l: 5, r: 6 };
        let addressing = addressing();
        let mut sim = InjectionSimulator::new(
            tk,
            mic_key,
            addressing,
            payload.clone(),
            InjectionConfig {
                retransmission_rate: 0.0,
                loss_rate: 0.0,
                ..InjectionConfig::default()
            },
        )
        .unwrap();
        let captures = sim.capture(400);

        // True trailer plaintext (recompute exactly as encapsulation does).
        let reference = encapsulate(&tk, mic_key, &addressing, Tsc(1), &payload);
        let key = crate::keymix::mix_key(&tk, &addressing.transmitter, Tsc(1));
        let mut plain = reference.ciphertext.clone();
        rc4::apply(&key, &mut plain).unwrap();
        let true_trailer = &plain[payload.len()..];

        // Genie model: per class, the trailer keystream distribution is a point
        // mass on the actual keystream bytes of the first capture in that class
        // (later captures of the same class are skipped so model and statistics
        // agree exactly — this isolates the plumbing from statistical noise).
        let classes = 256;
        let positions = 12;
        let mut probs = vec![1.0 / 256.0; classes * positions * 256];
        let mut stats = TrailerStatistics::new(classes, payload.len()).unwrap();
        let mut seen_class = vec![false; classes];
        for cap in &captures {
            let class = TscClassing::Tsc1.class_of(cap.tsc);
            if seen_class[class] {
                continue;
            }
            seen_class[class] = true;
            let pkt_key = crate::keymix::mix_key(&tk, &addressing.transmitter, cap.tsc);
            let ks = rc4::keystream(&pkt_key, payload.len() + 12).unwrap();
            for idx in 0..positions {
                let z = ks[payload.len() + idx] as usize;
                let start = (class * positions + idx) * 256;
                for (v, slot) in probs[start..start + 256].iter_mut().enumerate() {
                    *slot = if v == z { 0.9 } else { 0.1 / 255.0 };
                }
            }
            stats.add(class, &cap.ciphertext).unwrap();
        }
        let model = TkipKeystreamModel::from_probabilities(
            TscClassing::Tsc1,
            payload.len() + 1,
            positions,
            probs,
        )
        .unwrap();

        let outcome = recover_mic_key(
            &stats,
            &model,
            &payload,
            &addressing,
            &AttackConfig { max_candidates: 64 },
        )
        .unwrap();
        assert_eq!(&outcome.trailer[..], true_trailer);
        assert_eq!(outcome.mic_key, mic_key);
    }

    #[test]
    fn ipv4_field_recovery_by_checksum() {
        // The victim's true header.
        let truth = Ipv4Header::tcp([192, 168, 1, 77], [203, 0, 113, 5], 7, 57);
        let encoded = truth.encode();
        let wire_checksum = u16::from_be_bytes([encoded[10], encoded[11]]);

        // The attacker knows everything except TTL and the last two source bytes.
        let template = Ipv4Header {
            ttl: 0,
            src: [192, 168, 0, 0],
            ..truth
        };
        // Likelihoods that rank the truth within the first few candidates.
        let mut ttl_lik = vec![0.0f64; 256];
        ttl_lik[57] = 2.0;
        ttl_lik[64] = 2.5; // a more likely—but wrong—guess comes first
        let mut src2_lik = vec![0.0f64; 256];
        src2_lik[1] = 3.0;
        let mut src3_lik = vec![0.0f64; 256];
        src3_lik[77] = 1.0;
        src3_lik[78] = 2.0;
        let liks = vec![
            SingleLikelihoods::from_log_values(ttl_lik).unwrap(),
            SingleLikelihoods::from_log_values(src2_lik).unwrap(),
            SingleLikelihoods::from_log_values(src3_lik).unwrap(),
        ];
        let (ttl, src) = recover_ipv4_fields(&template, wire_checksum, &liks, 4096).unwrap();
        assert_eq!(ttl, 57);
        assert_eq!(src, [192, 168, 1, 77]);

        // Wrong number of likelihood positions is rejected.
        assert!(recover_ipv4_fields(&template, wire_checksum, &liks[..2], 16).is_err());
    }
}
