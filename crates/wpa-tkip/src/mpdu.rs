//! TKIP MSDU/MPDU encapsulation and decapsulation.
//!
//! Transmission of a payload under TKIP (Sect. 2.2, Fig. 2 of the paper):
//!
//! 1. Compute the Michael MIC over the Michael header (destination address,
//!    source address, priority, three zero bytes) and the MSDU payload, using
//!    the direction-specific MIC key, and append it.
//! 2. Append the ICV — a CRC-32 over the payload plus MIC.
//! 3. Encrypt payload, MIC and ICV with RC4 under the mixed per-packet key.
//!
//! The receiver decrypts, checks the ICV, then checks the MIC. The attack only
//! ever needs the *encapsulation* path plus the ability to re-run the integrity
//! checks over candidate plaintexts, but the decapsulation path is implemented
//! too so the substrate round-trips (and so forged packets built with a
//! recovered MIC key can be validated end-to-end).

use crypto_prims::{
    crc32,
    michael::{self, MichaelKey},
};

use crate::{
    keymix::{mix_key, TemporalKey},
    TkipError, Tsc,
};

/// Addressing and priority information entering the Michael header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAddressing {
    /// Destination MAC address.
    pub dst: [u8; 6],
    /// Source MAC address.
    pub src: [u8; 6],
    /// Transmitter MAC address (feeds the key mixing; for AP-to-client traffic
    /// this is the AP's address).
    pub transmitter: [u8; 6],
    /// 802.1D priority (0 for best effort).
    pub priority: u8,
}

impl FrameAddressing {
    /// The Michael header: `DA || SA || priority || 0 || 0 || 0`.
    pub fn michael_header(&self) -> [u8; 16] {
        let mut hdr = [0u8; 16];
        hdr[..6].copy_from_slice(&self.dst);
        hdr[6..12].copy_from_slice(&self.src);
        hdr[12] = self.priority;
        hdr
    }
}

/// An encrypted TKIP MPDU as observed on the air (data portion only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedMpdu {
    /// The TKIP sequence counter transmitted in the clear.
    pub tsc: Tsc,
    /// RC4-encrypted `payload || MIC || ICV`.
    pub ciphertext: Vec<u8>,
}

/// Length of the encrypted trailer: 8-byte MIC plus 4-byte ICV.
pub const TRAILER_LEN: usize = 12;

/// Encapsulates an MSDU payload into an encrypted TKIP MPDU.
///
/// `payload` is the plaintext MSDU body (LLC/SNAP + IP + TCP + data for the
/// packets used in the attack).
pub fn encapsulate(
    tk: &TemporalKey,
    mic_key: MichaelKey,
    addressing: &FrameAddressing,
    tsc: Tsc,
    payload: &[u8],
) -> EncryptedMpdu {
    // Michael MIC over header + payload.
    let mut mic_input = Vec::with_capacity(16 + payload.len());
    mic_input.extend_from_slice(&addressing.michael_header());
    mic_input.extend_from_slice(payload);
    let mic = michael::michael(mic_key, &mic_input);

    // ICV over payload + MIC.
    let mut body = Vec::with_capacity(payload.len() + TRAILER_LEN);
    body.extend_from_slice(payload);
    body.extend_from_slice(&mic);
    let icv = crc32::icv(&body);
    body.extend_from_slice(&icv);

    // RC4 encryption under the per-packet key.
    let key = mix_key(tk, &addressing.transmitter, tsc);
    rc4::apply(&key, &mut body).expect("16-byte TKIP key is always valid");

    EncryptedMpdu {
        tsc,
        ciphertext: body,
    }
}

/// Decapsulates an encrypted MPDU, verifying ICV and MIC.
///
/// Returns the plaintext MSDU payload.
///
/// # Errors
///
/// * [`TkipError::Malformed`] if the ciphertext is shorter than the trailer.
/// * [`TkipError::IntegrityFailure`] if the ICV or the MIC does not verify.
pub fn decapsulate(
    tk: &TemporalKey,
    mic_key: MichaelKey,
    addressing: &FrameAddressing,
    mpdu: &EncryptedMpdu,
) -> Result<Vec<u8>, TkipError> {
    if mpdu.ciphertext.len() < TRAILER_LEN {
        return Err(TkipError::Malformed(
            "MPDU shorter than MIC + ICV trailer".into(),
        ));
    }
    let key = mix_key(tk, &addressing.transmitter, mpdu.tsc);
    let mut plain = mpdu.ciphertext.clone();
    rc4::apply(&key, &mut plain).expect("16-byte TKIP key is always valid");

    let icv_offset = plain.len() - 4;
    let mic_offset = icv_offset - 8;
    let icv: [u8; 4] = plain[icv_offset..].try_into().expect("length checked");
    if !crc32::verify_icv(&plain[..icv_offset], &icv) {
        return Err(TkipError::IntegrityFailure("ICV"));
    }
    let mic: [u8; 8] = plain[mic_offset..icv_offset]
        .try_into()
        .expect("length checked");
    let mut mic_input = Vec::with_capacity(16 + mic_offset);
    mic_input.extend_from_slice(&addressing.michael_header());
    mic_input.extend_from_slice(&plain[..mic_offset]);
    if !michael::verify(mic_key, &mic_input, &mic) {
        return Err(TkipError::IntegrityFailure("Michael MIC"));
    }
    plain.truncate(mic_offset);
    Ok(plain)
}

/// Checks whether a *candidate plaintext trailer* (MIC || ICV) is consistent
/// with a known MSDU payload: the ICV must be the CRC-32 of `payload || MIC`.
///
/// This is the pruning test at the heart of the Section-5 attack: the attacker
/// knows `payload` and walks the candidate list for the 12 trailer bytes until
/// this check passes.
pub fn trailer_is_consistent(payload: &[u8], trailer: &[u8; TRAILER_LEN]) -> bool {
    let mut body = Vec::with_capacity(payload.len() + 8);
    body.extend_from_slice(payload);
    body.extend_from_slice(&trailer[..8]);
    let expected = crc32::icv(&body);
    trailer[8..] == expected
}

/// Derives the Michael MIC key from a fully decrypted packet (payload + MIC),
/// using the invertibility of Michael.
pub fn derive_mic_key(addressing: &FrameAddressing, payload: &[u8], mic: &[u8; 8]) -> MichaelKey {
    let mut mic_input = Vec::with_capacity(16 + payload.len());
    mic_input.extend_from_slice(&addressing.michael_header());
    mic_input.extend_from_slice(payload);
    michael::invert_key(&mic_input, mic)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addressing() -> FrameAddressing {
        FrameAddressing {
            dst: [0x00, 0x11, 0x22, 0x33, 0x44, 0x55],
            src: [0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb],
            transmitter: [0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb],
            priority: 0,
        }
    }

    const TK: TemporalKey = [0x42; 16];
    const MIC_KEY: MichaelKey = MichaelKey {
        l: 0x0102_0304,
        r: 0xa1b2_c3d4,
    };

    #[test]
    fn encapsulate_decapsulate_roundtrip() {
        let payload = b"LLC/SNAP + IP + TCP would go here; any bytes work".to_vec();
        let mpdu = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(77), &payload);
        assert_eq!(mpdu.ciphertext.len(), payload.len() + TRAILER_LEN);
        let plain = decapsulate(&TK, MIC_KEY, &addressing(), &mpdu).unwrap();
        assert_eq!(plain, payload);
    }

    #[test]
    fn ciphertext_differs_per_tsc() {
        let payload = vec![0u8; 32];
        let a = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(1), &payload);
        let b = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(2), &payload);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn corruption_is_detected() {
        let payload = b"integrity matters".to_vec();
        let mut mpdu = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(9), &payload);
        mpdu.ciphertext[3] ^= 0x01;
        assert!(matches!(
            decapsulate(&TK, MIC_KEY, &addressing(), &mpdu),
            Err(TkipError::IntegrityFailure(_))
        ));
    }

    #[test]
    fn wrong_mic_key_fails_mic_but_passes_icv() {
        let payload = b"wrong key test".to_vec();
        let mpdu = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(9), &payload);
        let wrong = MichaelKey { l: 1, r: 2 };
        assert_eq!(
            decapsulate(&TK, wrong, &addressing(), &mpdu).unwrap_err(),
            TkipError::IntegrityFailure("Michael MIC")
        );
    }

    #[test]
    fn short_mpdu_rejected() {
        let mpdu = EncryptedMpdu {
            tsc: Tsc(0),
            ciphertext: vec![0u8; 5],
        };
        assert!(matches!(
            decapsulate(&TK, MIC_KEY, &addressing(), &mpdu),
            Err(TkipError::Malformed(_))
        ));
    }

    #[test]
    fn trailer_consistency_check() {
        let payload = b"known plaintext packet body".to_vec();
        let mpdu = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(5), &payload);
        // Decrypt it ourselves to obtain the true trailer.
        let key = mix_key(&TK, &addressing().transmitter, Tsc(5));
        let mut plain = mpdu.ciphertext.clone();
        rc4::apply(&key, &mut plain).unwrap();
        let trailer: [u8; TRAILER_LEN] = plain[payload.len()..].try_into().unwrap();
        assert!(trailer_is_consistent(&payload, &trailer));

        let mut bad = trailer;
        bad[0] ^= 1;
        assert!(!trailer_is_consistent(&payload, &bad));
    }

    #[test]
    fn mic_key_recovery_from_decrypted_packet() {
        let payload = b"the packet the attacker decrypts".to_vec();
        let mpdu = encapsulate(&TK, MIC_KEY, &addressing(), Tsc(123), &payload);
        let key = mix_key(&TK, &addressing().transmitter, Tsc(123));
        let mut plain = mpdu.ciphertext.clone();
        rc4::apply(&key, &mut plain).unwrap();
        let mic: [u8; 8] = plain[payload.len()..payload.len() + 8].try_into().unwrap();
        let recovered = derive_mic_key(&addressing(), &payload, &mic);
        assert_eq!(recovered, MIC_KEY);
    }
}
