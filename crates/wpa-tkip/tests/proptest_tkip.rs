//! Property-based tests for the TKIP substrate.

use crypto_prims::michael::MichaelKey;
use proptest::prelude::*;
use wpa_tkip::{
    keymix::mix_key,
    mpdu::{decapsulate, derive_mic_key, encapsulate, trailer_is_consistent, FrameAddressing},
    net::{internet_checksum, Ipv4Header, TcpHeader},
    Tsc,
};

fn arb_addressing() -> impl Strategy<Value = FrameAddressing> {
    (
        prop::array::uniform6(any::<u8>()),
        prop::array::uniform6(any::<u8>()),
        prop::array::uniform6(any::<u8>()),
        0u8..8,
    )
        .prop_map(|(dst, src, transmitter, priority)| FrameAddressing {
            dst,
            src,
            transmitter,
            priority,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TKIP encapsulation round-trips for arbitrary keys, addresses, TSCs and payloads,
    /// and the decrypted trailer always satisfies the attack's consistency check.
    #[test]
    fn encapsulation_roundtrip(tk in prop::array::uniform16(any::<u8>()),
                               l in any::<u32>(), r in any::<u32>(),
                               addressing in arb_addressing(),
                               tsc in 0u64..0xFFFF_FFFF,
                               payload in prop::collection::vec(any::<u8>(), 1..256)) {
        let mic_key = MichaelKey { l, r };
        let mpdu = encapsulate(&tk, mic_key, &addressing, Tsc(tsc), &payload);
        prop_assert_eq!(mpdu.ciphertext.len(), payload.len() + 12);
        let plain = decapsulate(&tk, mic_key, &addressing, &mpdu).unwrap();
        prop_assert_eq!(&plain, &payload);

        // Decrypt manually and check the trailer consistency + MIC-key inversion.
        let key = mix_key(&tk, &addressing.transmitter, Tsc(tsc));
        let mut decrypted = mpdu.ciphertext.clone();
        rc4::apply(&key, &mut decrypted).unwrap();
        let trailer: [u8; 12] = decrypted[payload.len()..].try_into().unwrap();
        prop_assert!(trailer_is_consistent(&payload, &trailer));
        let mic: [u8; 8] = trailer[..8].try_into().unwrap();
        prop_assert_eq!(derive_mic_key(&addressing, &payload, &mic), mic_key);
    }

    /// Corrupting any ciphertext byte is detected by the ICV or the MIC.
    #[test]
    fn corruption_detected(tk in prop::array::uniform16(any::<u8>()),
                           addressing in arb_addressing(),
                           payload in prop::collection::vec(any::<u8>(), 1..64),
                           corrupt_at in 0usize..128,
                           corrupt_bit in 0u8..8) {
        let mic_key = MichaelKey { l: 7, r: 13 };
        let mut mpdu = encapsulate(&tk, mic_key, &addressing, Tsc(5), &payload);
        let idx = corrupt_at % mpdu.ciphertext.len();
        mpdu.ciphertext[idx] ^= 1 << corrupt_bit;
        prop_assert!(decapsulate(&tk, mic_key, &addressing, &mpdu).is_err());
    }

    /// The per-packet key always exposes the TSC-derived prefix and the TKIP
    /// "weak key avoidance" bit pattern in byte 1.
    #[test]
    fn key_prefix_structure(tk in prop::array::uniform16(any::<u8>()),
                            ta in prop::array::uniform6(any::<u8>()),
                            tsc in any::<u64>()) {
        let tsc = Tsc(tsc & 0xFFFF_FFFF_FFFF);
        let key = mix_key(&tk, &ta, tsc);
        prop_assert_eq!(key[0], tsc.tsc1());
        prop_assert_eq!(key[1], (tsc.tsc1() | 0x20) & 0x7f);
        prop_assert_eq!(key[2], tsc.tsc0());
        // Byte 1 always has bit 5 set and bit 7 clear.
        prop_assert_eq!(key[1] & 0x80, 0);
        prop_assert_eq!(key[1] & 0x20, 0x20);
    }

    /// IPv4 and TCP headers round-trip and their checksums validate.
    #[test]
    fn ip_tcp_roundtrip(src in prop::array::uniform4(any::<u8>()),
                        dst in prop::array::uniform4(any::<u8>()),
                        ttl in 1u8..255,
                        sport in any::<u16>(), dport in any::<u16>(),
                        seq in any::<u32>(), ack in any::<u32>(),
                        payload in prop::collection::vec(any::<u8>(), 0..64)) {
        let ip = Ipv4Header::tcp(src, dst, payload.len() as u16, ttl);
        let encoded = ip.encode();
        prop_assert_eq!(internet_checksum(&encoded), 0);
        prop_assert_eq!(Ipv4Header::parse(&encoded).unwrap(), ip);

        let tcp = TcpHeader { src_port: sport, dst_port: dport, seq, ack, flags: 0x18, window: 1024 };
        let enc = tcp.encode(src, dst, &payload);
        prop_assert_eq!(TcpHeader::parse(&enc, src, dst, &payload).unwrap(), tcp);
    }
}
