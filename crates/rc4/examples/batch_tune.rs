//! Quick timing harness for the batch engine: `cargo run --release -p rc4
//! --example batch_tune`. Prints per-byte cost for the scalar PRGA and each
//! lane count, for both the long-stream (PRGA-bound) and rekey-per-68-bytes
//! (KSA-bound, per-TSC-shaped) regimes. Used to pick `DEFAULT_LANES`; the
//! criterion numbers in BENCH_*.json come from `bench/benches/rc4_throughput`.

use std::time::Instant;

use rc4::batch::{InterleavedBatch, KeystreamBatch};
use rc4::Prga;

fn keys(n: usize) -> Vec<u8> {
    (0..n * 16).map(|i| (i * 2654435761) as u8).collect()
}

fn time<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_lanes<const N: usize>(per_lane: usize, iters: u32) {
    let keys = keys(N);
    let mut engine = InterleavedBatch::<N>::new();
    let mut out = vec![0u8; N * per_lane];
    let ns = time(
        || {
            engine.schedule(std::hint::black_box(&keys), 16).unwrap();
            engine.fill(std::hint::black_box(&mut out), per_lane);
        },
        iters,
    );
    let bytes = (N * per_lane) as f64;
    println!(
        "  lanes {N:>2}: {:7.3} ns/B  {:7.1} ns/key  {:6.3} GiB/s",
        ns / bytes,
        ns / N as f64,
        bytes / ns * 1e9 / (1u64 << 30) as f64
    );
}

fn bench_phases<const N: usize>() {
    let keys = keys(N);
    let mut engine = InterleavedBatch::<N>::new();
    let ksa = time(
        || {
            engine.schedule(std::hint::black_box(&keys), 16).unwrap();
        },
        3000,
    );
    let mut out = vec![0u8; N * 4096];
    engine.schedule(&keys, 16).unwrap();
    let prga = time(|| engine.fill(std::hint::black_box(&mut out), 4096), 300);
    println!(
        "  lanes {N:>2}: KSA {:7.1} ns/key ({:5.2} c/lane-round)   PRGA {:6.3} ns/B ({:5.2} c/lane-round)",
        ksa / N as f64,
        ksa / N as f64 / 256.0 * 2.1,
        prga / (N * 4096) as f64,
        prga / (N * 4096) as f64 * 2.1,
    );
}

fn main() {
    let scalar_ksa = {
        let key = [0xA5u8; 16];
        let mut sink = 0u64;
        let ns = time(
            || {
                let p = Prga::new(std::hint::black_box(&key)).unwrap();
                sink = sink.wrapping_add(p.state().lookup(0) as u64);
            },
            20000,
        );
        std::hint::black_box(sink);
        ns
    };
    println!(
        "scalar KSA: {scalar_ksa:.1} ns/key ({:.2} c/round)",
        scalar_ksa / 256.0 * 2.1
    );
    println!("phases:");
    bench_phases::<4>();
    bench_phases::<8>();
    bench_phases::<16>();
    bench_phases::<32>();

    let mut prga = Prga::new(b"benchmark key 16").unwrap();
    let mut buf = vec![0u8; 65536];
    let scalar = time(|| prga.fill(std::hint::black_box(&mut buf)), 200);
    println!(
        "scalar fill: {:.3} ns/B ({:.3} GiB/s)",
        scalar / 65536.0,
        65536.0 / scalar * 1e9 / (1u64 << 30) as f64
    );

    println!("long streams (4096 B/lane, schedule amortised):");
    bench_lanes::<4>(4096, 400);
    bench_lanes::<8>(4096, 300);
    bench_lanes::<16>(4096, 200);
    bench_lanes::<32>(4096, 100);

    println!("short streams (68 B/lane, KSA-bound):");
    bench_lanes::<4>(68, 4000);
    bench_lanes::<8>(68, 3000);
    bench_lanes::<16>(68, 2000);
    bench_lanes::<32>(68, 1000);
}
