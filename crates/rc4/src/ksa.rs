//! The RC4 Key Scheduling Algorithm (KSA).

use crate::{error::KeyError, state::State, MAX_KEY_LEN, MIN_KEY_LEN, PERM_SIZE};

/// The Key Scheduling Algorithm.
///
/// The KSA initializes the permutation `S` from a variable-length key:
/// starting from the identity permutation it performs 256 swap rounds, where
/// the swap target accumulates the key bytes (repeated cyclically).
///
/// [`Ksa`] is a zero-sized namespace type; most callers use the free function
/// [`ksa`] or go straight to [`crate::Prga::new`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Ksa;

impl Ksa {
    /// Runs the KSA for `key` and returns the resulting state.
    ///
    /// The returned state has `i = j = 0`, ready for the PRGA.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn schedule(key: &[u8]) -> Result<State, KeyError> {
        if key.len() < MIN_KEY_LEN || key.len() > MAX_KEY_LEN {
            return Err(KeyError::new(key.len()));
        }
        let mut state = State::identity();
        let mut j: u8 = 0;
        for i in 0..PERM_SIZE {
            j = j.wrapping_add(state.s[i]).wrapping_add(key[i % key.len()]);
            state.s.swap(i, j as usize);
        }
        state.i = 0;
        state.j = 0;
        Ok(state)
    }

    /// Runs the KSA and additionally records the trajectory of the `j` index.
    ///
    /// The trajectory (one `j` value per KSA round) is used by the bias-hunting
    /// examples to visualise how key bytes steer the permutation; it is not
    /// needed for encryption.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn schedule_traced(key: &[u8]) -> Result<(State, Vec<u8>), KeyError> {
        if key.len() < MIN_KEY_LEN || key.len() > MAX_KEY_LEN {
            return Err(KeyError::new(key.len()));
        }
        let mut state = State::identity();
        let mut trace = Vec::with_capacity(PERM_SIZE);
        let mut j: u8 = 0;
        for i in 0..PERM_SIZE {
            j = j.wrapping_add(state.s[i]).wrapping_add(key[i % key.len()]);
            state.s.swap(i, j as usize);
            trace.push(j);
        }
        Ok((state, trace))
    }
}

/// Convenience wrapper around [`Ksa::schedule`].
///
/// # Errors
///
/// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
pub fn ksa(key: &[u8]) -> Result<State, KeyError> {
    Ksa::schedule(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_produces_permutation() {
        let st = ksa(b"Key").unwrap();
        assert!(st.is_permutation());
        assert_eq!(st.i(), 0);
        assert_eq!(st.j(), 0);
    }

    #[test]
    fn different_keys_differ() {
        let a = ksa(b"Key").unwrap();
        let b = ksa(b"Kez").unwrap();
        assert_ne!(a.permutation(), b.permutation());
    }

    #[test]
    fn key_length_limits() {
        assert_eq!(Ksa::schedule(&[]).unwrap_err(), KeyError::new(0));
        assert_eq!(Ksa::schedule(&[0; 300]).unwrap_err(), KeyError::new(300));
        assert!(Ksa::schedule(&[7u8; 256]).is_ok());
        assert!(Ksa::schedule(&[7u8]).is_ok());
    }

    #[test]
    fn traced_matches_plain() {
        let (st, trace) = Ksa::schedule_traced(b"wiki").unwrap();
        let plain = ksa(b"wiki").unwrap();
        assert_eq!(st.permutation(), plain.permutation());
        assert_eq!(trace.len(), PERM_SIZE);
    }

    #[test]
    fn repeated_key_bytes_cycle() {
        // A key of [k] repeated 4 times behaves identically to a 1-byte key [k]
        // because the KSA indexes the key modulo its length.
        let a = ksa(&[0x42]).unwrap();
        let b = ksa(&[0x42, 0x42, 0x42, 0x42]).unwrap();
        assert_eq!(a.permutation(), b.permutation());
    }
}
