//! Error types for the RC4 crate.

use core::fmt;

/// Error returned when an RC4 key has an invalid length.
///
/// RC4 keys must be between [`crate::MIN_KEY_LEN`] and [`crate::MAX_KEY_LEN`]
/// bytes long (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyError {
    /// The offending key length in bytes.
    pub len: usize,
}

impl KeyError {
    /// Creates a new error for a key of `len` bytes.
    pub fn new(len: usize) -> Self {
        Self { len }
    }
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid RC4 key length {} (must be between {} and {} bytes)",
            self.len,
            crate::MIN_KEY_LEN,
            crate::MAX_KEY_LEN
        )
    }
}

impl std::error::Error for KeyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_length() {
        let err = KeyError::new(0);
        let msg = err.to_string();
        assert!(msg.contains('0'));
        assert!(msg.contains("256"));
    }
}
