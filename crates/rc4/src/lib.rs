//! From-scratch implementation of the RC4 stream cipher.
//!
//! This crate provides the substrate for every other crate in the workspace: it
//! implements the Key Scheduling Algorithm (KSA) and the Pseudo Random Generation
//! Algorithm (PRGA) exactly as analysed in *All Your Biases Belong To Us: Breaking
//! RC4 in WPA-TKIP and TLS* (Vanhoef & Piessens), together with convenience APIs
//! for bulk keystream generation, encryption, and keystream introspection that the
//! bias-hunting and attack crates build on.
//!
//! RC4 is **broken** — that is the entire point of this workspace. Nothing in this
//! crate should be used to protect real data; it exists so the statistical attacks
//! on RC4 can be reproduced and studied.
//!
//! # Structure
//!
//! * [`Ksa`] / [`ksa`] — the key scheduling algorithm producing the initial
//!   permutation of `{0, ..., 255}`.
//! * [`Prga`] — the keystream generator. It exposes both an [`Iterator`]
//!   interface and bulk [`Prga::fill`] / [`Prga::skip`] operations, plus access to
//!   the internal `(S, i, j)` state for research purposes.
//! * [`Rc4`] — the cipher: XORs the keystream into plaintext/ciphertext buffers.
//! * [`Rc4Drop`] — RC4-drop\[n\]: discards the first `n` keystream bytes, the
//!   mitigation recommended by Mironov that the paper's long-term analyses assume.
//! * [`batch`] — the batched multi-key engine: [`batch::InterleavedBatch`] steps
//!   many independent RC4 states per loop iteration, the bulk-generation hot
//!   path behind the statistics datasets.
//!
//! # Examples
//!
//! ```
//! use rc4::Rc4;
//!
//! let mut cipher = Rc4::new(b"Key").expect("key length is valid");
//! let mut data = *b"Plaintext";
//! cipher.apply_keystream(&mut data);
//! assert_eq!(data, [0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod cipher;
mod error;
mod ksa;
mod prga;
mod state;

pub use cipher::{Rc4, Rc4Drop};
pub use error::KeyError;
pub use ksa::{ksa, Ksa};
pub use prga::Prga;
pub use state::State;

/// Size of the RC4 internal permutation.
pub const PERM_SIZE: usize = 256;

/// Minimum RC4 key length in bytes accepted by this implementation.
///
/// RC4 formally allows 1-byte keys; all analyses in the paper use at least
/// 5-byte (40-bit) keys, but we accept the full legal range.
pub const MIN_KEY_LEN: usize = 1;

/// Maximum RC4 key length in bytes (the KSA only consumes up to 256 key bytes).
pub const MAX_KEY_LEN: usize = 256;

/// Length in bytes of the 128-bit keys used for all keystream statistics in the paper.
pub const PAPER_KEY_LEN: usize = 16;

/// Generates `len` keystream bytes for `key` in one call.
///
/// This is a convenience wrapper used pervasively by the statistics and attack
/// crates: it runs the KSA and then the PRGA for `len` rounds.
///
/// # Errors
///
/// Returns [`KeyError`] if the key length is outside `1..=256`.
///
/// # Examples
///
/// ```
/// let ks = rc4::keystream(b"Key", 3).unwrap();
/// assert_eq!(ks, vec![0xEB, 0x9F, 0x77]);
/// ```
pub fn keystream(key: &[u8], len: usize) -> Result<Vec<u8>, KeyError> {
    let mut prga = Prga::new(key)?;
    let mut out = vec![0u8; len];
    prga.fill(&mut out);
    Ok(out)
}

/// Encrypts (or decrypts — RC4 is symmetric) `data` in place under `key`.
///
/// # Errors
///
/// Returns [`KeyError`] if the key length is outside `1..=256`.
pub fn apply(key: &[u8], data: &mut [u8]) -> Result<(), KeyError> {
    let mut cipher = Rc4::new(key)?;
    cipher.apply_keystream(data);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 6229-style test vectors (key, offset, expected keystream bytes).
    const VECTORS: &[(&[u8], usize, [u8; 16])] = &[
        (
            &[0x01, 0x02, 0x03, 0x04, 0x05],
            0,
            [
                0xb2, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27, 0xcc, 0xc3, 0x52, 0x4a, 0x0a, 0x11,
                0x18, 0xa8,
            ],
        ),
        (
            &[0x01, 0x02, 0x03, 0x04, 0x05],
            16,
            [
                0x69, 0x82, 0x94, 0x4f, 0x18, 0xfc, 0x82, 0xd5, 0x89, 0xc4, 0x03, 0xa4, 0x7a, 0x0d,
                0x09, 0x19,
            ],
        ),
        (
            &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07],
            0,
            [
                0x29, 0x3f, 0x02, 0xd4, 0x7f, 0x37, 0xc9, 0xb6, 0x33, 0xf2, 0xaf, 0x52, 0x85, 0xfe,
                0xb4, 0x6b,
            ],
        ),
        (
            &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08],
            0,
            [
                0x97, 0xab, 0x8a, 0x1b, 0xf0, 0xaf, 0xb9, 0x61, 0x32, 0xf2, 0xf6, 0x72, 0x58, 0xda,
                0x15, 0xa8,
            ],
        ),
        (
            &[
                0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
                0x0f, 0x10,
            ],
            0,
            [
                0x9a, 0xc7, 0xcc, 0x9a, 0x60, 0x9d, 0x1e, 0xf7, 0xb2, 0x93, 0x28, 0x99, 0xcd, 0xe4,
                0x1b, 0x97,
            ],
        ),
        (
            &[
                0x83, 0x32, 0x22, 0x77, 0x2a, 0x61, 0x0b, 0xad, 0xea, 0x9d, 0xcf, 0x7d, 0x03, 0x36,
                0x06, 0x9f,
            ],
            0,
            [
                0x2b, 0x51, 0xb9, 0xd0, 0x69, 0x53, 0x94, 0x69, 0x31, 0xc8, 0xe0, 0xdc, 0xb4, 0xc3,
                0xf5, 0x3c,
            ],
        ),
    ];

    #[test]
    fn rfc6229_vectors() {
        for (key, offset, expected) in VECTORS {
            let ks = keystream(key, offset + 16).unwrap();
            assert_eq!(&ks[*offset..], expected, "key {key:02x?} offset {offset}");
        }
    }

    #[test]
    fn keystream_is_deterministic() {
        let a = keystream(b"another key", 512).unwrap();
        let b = keystream(b"another key", 512).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_roundtrips() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let original = data.clone();
        apply(b"secret", &mut data).unwrap();
        assert_ne!(data, original);
        apply(b"secret", &mut data).unwrap();
        assert_eq!(data, original);
    }

    #[test]
    fn rejects_empty_and_oversized_keys() {
        assert!(keystream(&[], 1).is_err());
        assert!(keystream(&[0u8; 257], 1).is_err());
        assert!(keystream(&[0u8; 256], 1).is_ok());
    }
}
