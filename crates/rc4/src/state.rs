//! The internal RC4 state `(S, i, j)`.

use crate::PERM_SIZE;

/// Internal RC4 state: a permutation `S` of `{0, ..., 255}` plus the public
/// counter `i` and private index `j`.
///
/// The state is exposed publicly (read-only) because the bias-hunting code
/// inspects the evolution of the permutation, e.g. to validate the assumption
/// in Fluhrer–McGrew that the state is close to a random permutation after a
/// few PRGA rounds.
#[derive(Clone, PartialEq, Eq)]
pub struct State {
    pub(crate) s: [u8; PERM_SIZE],
    pub(crate) i: u8,
    pub(crate) j: u8,
}

impl State {
    /// Returns the identity permutation with `i = j = 0` (the state before the KSA runs).
    pub fn identity() -> Self {
        let mut s = [0u8; PERM_SIZE];
        for (idx, slot) in s.iter_mut().enumerate() {
            *slot = idx as u8;
        }
        Self { s, i: 0, j: 0 }
    }

    /// Returns the permutation table.
    pub fn permutation(&self) -> &[u8; PERM_SIZE] {
        &self.s
    }

    /// Returns the public counter `i`.
    pub fn i(&self) -> u8 {
        self.i
    }

    /// Returns the private index `j`.
    pub fn j(&self) -> u8 {
        self.j
    }

    /// Returns `S[idx]`.
    pub fn lookup(&self, idx: u8) -> u8 {
        self.s[idx as usize]
    }

    /// Returns `true` if `S` is a permutation of `{0, ..., 255}`.
    ///
    /// This invariant holds for every state reachable through the KSA/PRGA; it
    /// is checked by the property tests and available for debugging assertions
    /// elsewhere.
    pub fn is_permutation(&self) -> bool {
        let mut seen = [false; PERM_SIZE];
        for &v in &self.s {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    /// Swaps `S[a]` and `S[b]`.
    ///
    /// Exposed so research code (e.g. state-evolution experiments in the
    /// examples) can construct doctored permutations without reimplementing
    /// the state type.
    #[inline]
    pub fn swap(&mut self, a: u8, b: u8) {
        self.s.swap(a as usize, b as usize);
    }
}

impl core::fmt::Debug for State {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("State")
            .field("i", &self.i)
            .field("j", &self.j)
            .field("s[0..8]", &&self.s[..8])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_a_permutation() {
        let st = State::identity();
        assert!(st.is_permutation());
        assert_eq!(st.lookup(0), 0);
        assert_eq!(st.lookup(255), 255);
        assert_eq!(st.i(), 0);
        assert_eq!(st.j(), 0);
    }

    #[test]
    fn swap_preserves_permutation() {
        let mut st = State::identity();
        st.swap(3, 200);
        assert!(st.is_permutation());
        assert_eq!(st.lookup(3), 200);
        assert_eq!(st.lookup(200), 3);
    }

    #[test]
    fn non_permutation_detected() {
        let mut st = State::identity();
        st.s[0] = 1;
        assert!(!st.is_permutation());
    }

    #[test]
    fn debug_is_compact() {
        let st = State::identity();
        let s = format!("{st:?}");
        assert!(s.contains("State"));
        assert!(s.len() < 200);
    }
}
