//! The RC4 cipher interface built on top of the PRGA.

use crate::{error::KeyError, prga::Prga};

/// The RC4 stream cipher.
///
/// A thin wrapper around [`Prga`] exposing an encrypt/decrypt interface.
/// Because RC4 XORs a keystream, encryption and decryption are the same
/// operation; [`Rc4::apply_keystream`] does both.
///
/// # Examples
///
/// ```
/// use rc4::Rc4;
///
/// let mut enc = Rc4::new(b"Secret").unwrap();
/// let mut dec = Rc4::new(b"Secret").unwrap();
/// let mut msg = b"Attack at dawn".to_vec();
/// enc.apply_keystream(&mut msg);
/// dec.apply_keystream(&mut msg);
/// assert_eq!(msg, b"Attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct Rc4 {
    prga: Prga,
}

impl Rc4 {
    /// Creates a cipher instance for `key`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Result<Self, KeyError> {
        Ok(Self {
            prga: Prga::new(key)?,
        })
    }

    /// XORs the keystream into `data` in place.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        self.prga.xor_into(data);
    }

    /// Encrypts `plaintext` into a new vector.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.apply_keystream(&mut out);
        out
    }

    /// Decrypts `ciphertext` into a new vector.
    ///
    /// Identical to [`Rc4::encrypt`]; provided for readability at call sites.
    pub fn decrypt(&mut self, ciphertext: &[u8]) -> Vec<u8> {
        self.encrypt(ciphertext)
    }

    /// Consumes the cipher and returns the underlying keystream generator.
    pub fn into_prga(self) -> Prga {
        self.prga
    }

    /// Returns the current keystream position (bytes consumed so far).
    pub fn position(&self) -> u64 {
        self.prga.position()
    }
}

/// RC4-drop\[n\]: RC4 that discards the first `n` keystream bytes.
///
/// Dropping the initial keystream was the standard mitigation recommendation
/// (Mironov suggests discarding the first `12 * 256` bytes) against the
/// short-term biases; the paper's long-term attacks still work against it,
/// which is why it is part of the substrate.
#[derive(Debug, Clone)]
pub struct Rc4Drop {
    inner: Rc4,
    dropped: usize,
}

impl Rc4Drop {
    /// Number of bytes dropped by [`Rc4Drop::new_mironov`], i.e. `12 * 256`.
    pub const MIRONOV_DROP: usize = 12 * 256;

    /// Creates an RC4-drop\[n\] cipher.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8], drop_n: usize) -> Result<Self, KeyError> {
        let mut inner = Rc4::new(key)?;
        inner.prga.skip(drop_n);
        Ok(Self {
            inner,
            dropped: drop_n,
        })
    }

    /// Creates an RC4-drop cipher with the conservative 3072-byte drop
    /// recommended by Mironov.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn new_mironov(key: &[u8]) -> Result<Self, KeyError> {
        Self::new(key, Self::MIRONOV_DROP)
    }

    /// Number of keystream bytes that were discarded at construction.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// XORs the (post-drop) keystream into `data` in place.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        self.inner.apply_keystream(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keystream;

    #[test]
    fn encrypt_then_decrypt_roundtrip() {
        let mut enc = Rc4::new(b"roundtrip").unwrap();
        let mut dec = Rc4::new(b"roundtrip").unwrap();
        let ct = enc.encrypt(b"hello world");
        assert_eq!(dec.decrypt(&ct), b"hello world");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut whole = Rc4::new(b"stream").unwrap();
        let ct_whole = whole.encrypt(b"abcdefghij");

        let mut parts = Rc4::new(b"stream").unwrap();
        let mut ct_parts = parts.encrypt(b"abcde");
        ct_parts.extend(parts.encrypt(b"fghij"));
        assert_eq!(ct_whole, ct_parts);
    }

    #[test]
    fn drop_n_skips_keystream() {
        let full = keystream(b"dropkey", 300).unwrap();
        let mut dropped = Rc4Drop::new(b"dropkey", 100).unwrap();
        let mut data = vec![0u8; 200];
        dropped.apply_keystream(&mut data);
        assert_eq!(data, full[100..300]);
        assert_eq!(dropped.dropped(), 100);
    }

    #[test]
    fn mironov_drop_constant() {
        let c = Rc4Drop::new_mironov(b"mironov").unwrap();
        assert_eq!(c.dropped(), 3072);
    }

    #[test]
    fn position_advances_with_usage() {
        let mut c = Rc4::new(b"posn").unwrap();
        assert_eq!(c.position(), 0);
        let _ = c.encrypt(&[0u8; 37]);
        assert_eq!(c.position(), 37);
    }
}
