//! The RC4 Pseudo Random Generation Algorithm (PRGA).

use crate::{error::KeyError, ksa::Ksa, state::State};

/// The RC4 keystream generator.
///
/// Each call to [`Prga::next_byte`] performs one PRGA round: it advances the
/// public counter `i`, updates the private index `j`, swaps `S[i]` and `S[j]`,
/// and outputs `S[S[i] + S[j]]` (all arithmetic modulo 256).
///
/// The generator offers several access patterns used throughout the workspace:
///
/// * [`Prga::next_byte`] — one round at a time, convenient for tests and
///   state-inspection experiments.
/// * [`Prga::fill`] — bulk generation into a caller-provided buffer; this is the
///   hot path for the statistics workers.
/// * [`Prga::skip`] — discard keystream, used for RC4-drop\[n\] and for the
///   long-term dataset that drops the initial 1023 bytes.
/// * [`Prga::state`] — read-only access to the internal state for research.
///
/// # Examples
///
/// ```
/// use rc4::Prga;
///
/// let mut prga = Prga::new(b"Key").unwrap();
/// assert_eq!(prga.take_vec(3), vec![0xEB, 0x9F, 0x77]);
/// ```
#[derive(Debug, Clone)]
pub struct Prga {
    state: State,
    /// Number of keystream bytes produced so far (1-based position of the last byte).
    produced: u64,
}

impl Prga {
    /// Creates a generator for `key` by running the KSA.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Result<Self, KeyError> {
        Ok(Self::from_state(Ksa::schedule(key)?))
    }

    /// Creates a generator from an explicit state.
    ///
    /// Intended for research code that wants to start the PRGA from a doctored
    /// permutation (e.g. to study long-term biases under the random-state
    /// assumption of Fluhrer–McGrew).
    pub fn from_state(state: State) -> Self {
        Self { state, produced: 0 }
    }

    /// Produces the next keystream byte `Z_r`.
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        let s = &mut self.state;
        s.i = s.i.wrapping_add(1);
        s.j = s.j.wrapping_add(s.s[s.i as usize]);
        s.s.swap(s.i as usize, s.j as usize);
        let idx = s.s[s.i as usize].wrapping_add(s.s[s.j as usize]);
        self.produced += 1;
        s.s[idx as usize]
    }

    /// Fills `buf` with keystream bytes.
    #[inline]
    pub fn fill(&mut self, buf: &mut [u8]) {
        for slot in buf.iter_mut() {
            *slot = self.next_byte();
        }
    }

    /// Generates `len` keystream bytes into a new vector.
    pub fn take_vec(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }

    /// Discards the next `n` keystream bytes.
    ///
    /// Used to implement RC4-drop\[n\] and to skip to the long-term regime
    /// (the paper's long-term dataset always drops the initial 1023 bytes).
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            self.next_byte();
        }
    }

    /// XORs keystream into `data` in place (encrypt/decrypt).
    #[inline]
    pub fn xor_into(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            *byte ^= self.next_byte();
        }
    }

    /// Returns the number of keystream bytes produced so far.
    ///
    /// After producing `Z_1..Z_r` this returns `r`; the value corresponds to
    /// the 1-based keystream position used throughout the paper.
    pub fn position(&self) -> u64 {
        self.produced
    }

    /// Read-only access to the internal `(S, i, j)` state.
    pub fn state(&self) -> &State {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_byte_and_fill_agree() {
        let mut a = Prga::new(b"agreement").unwrap();
        let mut b = Prga::new(b"agreement").unwrap();
        let via_next: Vec<u8> = (0..100).map(|_| a.next_byte()).collect();
        let mut via_fill = vec![0u8; 100];
        b.fill(&mut via_fill);
        assert_eq!(via_next, via_fill);
    }

    #[test]
    fn skip_matches_generate_and_discard() {
        let mut a = Prga::new(b"skipper").unwrap();
        let mut b = Prga::new(b"skipper").unwrap();
        a.skip(1000);
        let _ = b.take_vec(1000);
        assert_eq!(a.take_vec(16), b.take_vec(16));
        assert_eq!(a.position(), 1016);
    }

    #[test]
    fn position_counts_bytes() {
        let mut p = Prga::new(b"pos").unwrap();
        assert_eq!(p.position(), 0);
        p.next_byte();
        assert_eq!(p.position(), 1);
        p.skip(9);
        assert_eq!(p.position(), 10);
    }

    #[test]
    fn state_remains_permutation() {
        let mut p = Prga::new(b"perm-check").unwrap();
        for _ in 0..10_000 {
            p.next_byte();
        }
        assert!(p.state().is_permutation());
    }

    #[test]
    fn xor_into_encrypts() {
        let mut p = Prga::new(b"Key").unwrap();
        let mut data = *b"Plaintext";
        p.xor_into(&mut data);
        assert_eq!(data, [0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3]);
    }

    #[test]
    fn from_state_identity_matches_known_evolution() {
        // Starting the PRGA from the identity permutation: i=1, j=S[1]=1,
        // swap is a no-op, output S[S[1]+S[1]] = S[2] = 2.
        let mut p = Prga::from_state(State::identity());
        assert_eq!(p.next_byte(), 2);
    }
}
