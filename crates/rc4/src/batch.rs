//! Batched multi-key RC4: step many independent keystreams per loop iteration.
//!
//! The scalar PRGA is latency-bound: every output byte depends on the swap of
//! the previous round, so a single stream runs one dependent chain of loads,
//! adds and stores. The statistics datasets, however, generate keystreams for
//! *millions of independent keys*, and independent streams have independent
//! dependency chains. [`InterleavedBatch`] exploits that: it keeps `N` RC4
//! states in a lane-interleaved layout (`S[v]` holds the `v`-th permutation
//! entry of all `N` lanes side by side) and steps all lanes inside one loop
//! body, so the out-of-order core overlaps `N` chains instead of stalling on
//! one. The same trick applies to the KSA, which dominates the cost of the
//! short keystreams most datasets need.
//!
//! Per-lane keystreams are bit-identical to the scalar [`crate::Prga`] — the
//! engine changes *scheduling*, not the cipher — which is what lets the
//! dataset generators batch their hot loops while keeping every dataset
//! byte-identical to the scalar path (verified by the property tests in
//! `tests/proptest_rc4.rs`).
//!
//! # Choosing a lane count
//!
//! The `rc4_batch` groups of the `rc4_throughput` bench sweep lane counts.
//! The loop is instruction-throughput bound (~13 µops per lane-round), so
//! once enough independent chains are in flight more lanes only add register
//! pressure: on the x86-64 build machines 8 lanes is the sweet spot (4
//! leaves ILP on the table, 16/32 spill), so [`DEFAULT_LANES`]` = 8` and
//! [`DefaultBatch`] is `InterleavedBatch<8>`. See README "Performance" for
//! measured numbers.
//!
//! This module is deliberately `forbid(unsafe_code)`-clean and portable; the
//! `rc4-accel` crate layers a runtime-dispatched AVX-512 implementation of
//! the same [`KeystreamBatch`] trait on top (gather/scatter steps 16 lanes
//! per instruction) and falls back to [`DefaultBatch`] elsewhere. Consumers
//! should go through `rc4_accel::AutoBatch` unless they specifically want
//! the portable engine.
//!
//! # Examples
//!
//! ```
//! use rc4::batch::{DefaultBatch, KeystreamBatch};
//!
//! // Two 3-byte keys, flat and lane-major.
//! let keys = *b"KeyKez";
//! let mut engine = DefaultBatch::new();
//! engine.schedule(&keys, 3).unwrap();
//! let mut out = vec![0u8; 2 * 4];
//! engine.fill(&mut out, 4);
//! assert_eq!(&out[..4], &rc4::keystream(b"Key", 4).unwrap()[..]);
//! assert_eq!(&out[4..], &rc4::keystream(b"Kez", 4).unwrap()[..]);
//! ```

use crate::{error::KeyError, prga::Prga, MAX_KEY_LEN, MIN_KEY_LEN, PERM_SIZE};

/// Lane count of [`DefaultBatch`], chosen by the `rc4_batch` lane-count
/// benchmarks (see the module docs).
pub const DEFAULT_LANES: usize = 8;

/// The batch engine consumers should reach for: [`InterleavedBatch`] at the
/// benchmark-chosen [`DEFAULT_LANES`].
pub type DefaultBatch = InterleavedBatch<DEFAULT_LANES>;

/// A generator stepping up to `lanes()` independent RC4 keystreams at once.
///
/// # Contract
///
/// * [`KeystreamBatch::schedule`] takes a flat, lane-major key buffer
///   (`keys[l * key_len..(l + 1) * key_len]` is lane `l`'s key) and rekeys
///   lanes `0..keys.len() / key_len`. Scheduling fewer keys than `lanes()`
///   is allowed — that is how callers drain a non-multiple-of-N tail.
/// * [`KeystreamBatch::fill`] appends `len` keystream bytes per scheduled
///   lane into a flat, lane-major output buffer. Repeated fills continue the
///   streams, exactly like repeated [`Prga::fill`] calls.
/// * Every lane's stream is bit-identical to a scalar [`Prga`] run with the
///   same key.
pub trait KeystreamBatch {
    /// Maximum number of lanes this engine steps per call.
    fn lanes(&self) -> usize;

    /// Number of lanes rekeyed by the last [`KeystreamBatch::schedule`] call.
    fn scheduled(&self) -> usize;

    /// Short stable engine name for logs, bench labels and perf records
    /// (e.g. `"scalar"`, `"portable"`, `"avx2"`). Names identify the
    /// *implementation*, so two engines with the same name must produce
    /// identical instruction-level strategies.
    fn name(&self) -> &'static str;

    /// Rekeys lanes `0..keys.len() / key_len` from a flat lane-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `key_len` is outside `1..=256`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, is not a whole number of keys, or holds
    /// more than [`KeystreamBatch::lanes`] keys — these are caller bugs, not
    /// runtime conditions.
    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError>;

    /// Generates the next `len` bytes of every scheduled lane, lane-major:
    /// `out[l * len..(l + 1) * len]` receives lane `l`'s keystream.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != scheduled() * len`.
    fn fill(&mut self, out: &mut [u8], len: usize);
}

/// Validates the shared shape rules of [`KeystreamBatch::schedule`] and
/// returns the number of lanes the key buffer covers.
///
/// Public so external engine implementations (e.g. the SIMD engines in
/// `rc4-accel`) enforce exactly the same contract as the built-in ones.
///
/// # Errors
///
/// Returns [`KeyError`] if `key_len` is outside `1..=256`.
///
/// # Panics
///
/// Panics on the shape violations listed under [`KeystreamBatch::schedule`].
pub fn check_schedule(keys: &[u8], key_len: usize, lanes: usize) -> Result<usize, KeyError> {
    if !(MIN_KEY_LEN..=MAX_KEY_LEN).contains(&key_len) {
        return Err(KeyError::new(key_len));
    }
    assert!(
        !keys.is_empty() && keys.len() % key_len == 0,
        "schedule needs a whole number of {key_len}-byte keys, got {} bytes",
        keys.len()
    );
    let n = keys.len() / key_len;
    assert!(n <= lanes, "scheduled {n} keys into a {lanes}-lane engine");
    Ok(n)
}

/// The reference batch implementation: one scalar [`Prga`] per lane.
///
/// This is the N-times-scalar baseline the interleaved engine is measured and
/// property-tested against; it is also the honest fallback for odd lane
/// counts.
#[derive(Debug, Clone)]
pub struct ScalarBatch {
    lanes: usize,
    prgas: Vec<Prga>,
}

impl ScalarBatch {
    /// Creates a scalar engine with `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a batch engine needs at least one lane");
        Self {
            lanes,
            prgas: Vec::with_capacity(lanes),
        }
    }
}

impl KeystreamBatch for ScalarBatch {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn scheduled(&self) -> usize {
        self.prgas.len()
    }

    fn name(&self) -> &'static str {
        "scalar"
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        check_schedule(keys, key_len, self.lanes)?;
        self.prgas.clear();
        for key in keys.chunks_exact(key_len) {
            self.prgas.push(Prga::new(key)?);
        }
        Ok(())
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        assert_eq!(
            out.len(),
            self.prgas.len() * len,
            "output buffer must hold len bytes per scheduled lane"
        );
        for (lane, prga) in self.prgas.iter_mut().enumerate() {
            prga.fill(&mut out[lane * len..(lane + 1) * len]);
        }
    }
}

/// `N` RC4 states in a lane-interleaved layout, stepped together.
///
/// `s[v][l]` is permutation entry `v` of lane `l`, so one loop iteration
/// touches the same row of every lane. The public counter `i` advances
/// identically in every lane (it never depends on data) and is shared; the
/// private index `j` and the permutation are per lane. KSA and PRGA run all
/// `N` lanes inside the position loop, giving the CPU `N` independent
/// dependency chains to overlap.
#[derive(Debug, Clone)]
pub struct InterleavedBatch<const N: usize> {
    /// Lane-interleaved permutations: `s[v][l]` = `S_l[v]`.
    s: [[u8; N]; PERM_SIZE],
    /// Per-lane private index `j`.
    j: [u8; N],
    /// Shared public counter `i`.
    i: u8,
    /// Lanes covered by the last `schedule` call.
    scheduled: usize,
}

impl<const N: usize> InterleavedBatch<N> {
    /// Creates an engine with all lanes in the pre-KSA identity state.
    pub fn new() -> Self {
        assert!(N > 0, "a batch engine needs at least one lane");
        let mut s = [[0u8; N]; PERM_SIZE];
        for (v, row) in s.iter_mut().enumerate() {
            *row = [v as u8; N];
        }
        Self {
            s,
            j: [0; N],
            i: 0,
            scheduled: 0,
        }
    }
}

impl<const N: usize> Default for InterleavedBatch<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> KeystreamBatch for InterleavedBatch<N> {
    fn lanes(&self) -> usize {
        N
    }

    fn scheduled(&self) -> usize {
        self.scheduled
    }

    fn name(&self) -> &'static str {
        "portable"
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        let n = check_schedule(keys, key_len, N)?;

        // Expand the keys into a lane-interleaved table so the KSA loop has
        // no per-round modulo: ek[r][l] = key_l[r % key_len]. Unused lanes
        // repeat the last key — they are never read back, but keeping them
        // scheduled keeps every index in the fill loop well defined.
        let mut ek = [[0u8; N]; PERM_SIZE];
        for lane in 0..N {
            let key = &keys[lane.min(n - 1) * key_len..][..key_len];
            let mut k = 0usize;
            for row in ek.iter_mut() {
                row[lane] = key[k];
                k += 1;
                if k == key_len {
                    k = 0;
                }
            }
        }

        // Work on a stack-local copy so the optimizer knows the table cannot
        // alias `ek` or `j` (see `fill` for the same trick).
        let mut s = [[0u8; N]; PERM_SIZE];
        for (v, row) in s.iter_mut().enumerate() {
            *row = [v as u8; N];
        }
        let mut j = [0u8; N];
        for i in 0..PERM_SIZE {
            // Row `i` is read once per lane before any lane writes it back,
            // and the swapped-in values are accumulated in `new_row` so the
            // whole row is written back with ONE wide store instead of one
            // byte store per lane — store-port pressure is what bounds this
            // loop. When `jl == i` the gather still sees the pre-swap `si`
            // (this lane's column is untouched until its own store below),
            // which is exactly the value the swap leaves in place.
            let row = s[i];
            let key_row = ek[i];
            let mut new_row = [0u8; N];
            for l in 0..N {
                let si = row[l];
                let jl = j[l].wrapping_add(si).wrapping_add(key_row[l]);
                j[l] = jl;
                new_row[l] = s[jl as usize][l];
                s[jl as usize][l] = si;
            }
            s[i] = new_row;
        }
        self.s = s;
        self.j = [0; N];
        self.i = 0;
        self.scheduled = n;
        Ok(())
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        assert_eq!(
            out.len(),
            self.scheduled * len,
            "output buffer must hold len bytes per scheduled lane"
        );
        // Writing straight to the lane-major output would store one byte per
        // lane per round at a stride of `len` — for the typical 4 KiB-ish
        // streams every lane aliases the same L1 set and the stores thrash.
        // Instead each chunk of rounds writes a small position-major scratch
        // (sequential stores, L1-resident) and is then transposed out.
        const CHUNK: usize = 256;
        let n = self.scheduled;
        let mut scratch = [[0u8; N]; CHUNK];
        // Work on stack-local copies: the optimizer then knows `s`, `j` and
        // `scratch` cannot alias each other or `out`, which it cannot prove
        // for fields behind `&mut self`.
        let mut s = self.s;
        let mut i = self.i;
        let mut j = self.j;
        let mut base = 0usize;
        while base < len {
            let m = (len - base).min(CHUNK);
            for vals in scratch.iter_mut().take(m) {
                i = i.wrapping_add(1);
                // One contiguous load of S[i] across all lanes; the swapped-in
                // values accumulate in `new_row` and are written back with ONE
                // wide store per round instead of one byte store per lane
                // (store-port pressure bounds this loop). Because row `i` is
                // only committed at the end of the round, an output index
                // `t == i` would read the stale pre-swap byte — the select
                // below substitutes the in-register `sj` for that case. The
                // `t == jl` case needs no fix-up: that column was stored
                // before the gather.
                let row = s[i as usize];
                let mut new_row = [0u8; N];
                for l in 0..N {
                    let si = row[l];
                    let jl = j[l].wrapping_add(si);
                    j[l] = jl;
                    let sj = s[jl as usize][l];
                    s[jl as usize][l] = si;
                    new_row[l] = sj;
                    let t = si.wrapping_add(sj);
                    vals[l] = if t == i { sj } else { s[t as usize][l] };
                }
                s[i as usize] = new_row;
            }
            for l in 0..n {
                for (slot, vals) in out[l * len + base..][..m].iter_mut().zip(&scratch) {
                    *slot = vals[l];
                }
            }
            base += m;
        }
        self.s = s;
        self.i = i;
        self.j = j;
    }
}

/// Generates `len` keystream bytes for every key in a flat lane-major buffer,
/// batching through [`DefaultBatch`] (any number of keys; full batches of
/// [`DEFAULT_LANES`] plus one tail batch).
///
/// The result is lane-major like [`KeystreamBatch::fill`]'s output:
/// `out[k * len..(k + 1) * len]` is the keystream of key `k`.
///
/// # Errors
///
/// Returns [`KeyError`] if `key_len` is outside `1..=256`.
///
/// # Panics
///
/// Panics if `keys` is empty or not a whole number of `key_len`-byte keys.
///
/// # Examples
///
/// ```
/// let out = rc4::batch::keystreams_batch(b"KeyKez", 3, 3).unwrap();
/// assert_eq!(out, [rc4::keystream(b"Key", 3).unwrap(), rc4::keystream(b"Kez", 3).unwrap()].concat());
/// ```
pub fn keystreams_batch(keys: &[u8], key_len: usize, len: usize) -> Result<Vec<u8>, KeyError> {
    if !(MIN_KEY_LEN..=MAX_KEY_LEN).contains(&key_len) {
        return Err(KeyError::new(key_len));
    }
    assert!(
        !keys.is_empty() && keys.len() % key_len == 0,
        "keystreams_batch needs a whole number of {key_len}-byte keys, got {} bytes",
        keys.len()
    );
    let total = keys.len() / key_len;
    let mut out = vec![0u8; total * len];
    let mut engine = DefaultBatch::new();
    let mut done = 0usize;
    while done < total {
        let n = (total - done).min(DEFAULT_LANES);
        engine.schedule(&keys[done * key_len..(done + n) * key_len], key_len)?;
        engine.fill(&mut out[done * len..(done + n) * len], len);
        done += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keystream;

    /// Flattens `n` copies of distinct test keys into the flat lane-major form.
    fn test_keys(n: usize, key_len: usize) -> Vec<u8> {
        let mut keys = vec![0u8; n * key_len];
        for (k, key) in keys.chunks_exact_mut(key_len).enumerate() {
            for (b, slot) in key.iter_mut().enumerate() {
                *slot = (0x31 + 7 * k + 13 * b) as u8;
            }
        }
        keys
    }

    fn scalar_reference(keys: &[u8], key_len: usize, len: usize) -> Vec<u8> {
        keys.chunks_exact(key_len)
            .flat_map(|key| keystream(key, len).unwrap())
            .collect()
    }

    #[test]
    fn interleaved_matches_scalar_full_batch() {
        let keys = test_keys(16, 16);
        let mut engine = InterleavedBatch::<16>::new();
        engine.schedule(&keys, 16).unwrap();
        let mut out = vec![0u8; 16 * 96];
        engine.fill(&mut out, 96);
        assert_eq!(out, scalar_reference(&keys, 16, 96));
    }

    #[test]
    fn interleaved_matches_scalar_partial_batch() {
        let keys = test_keys(5, 16);
        let mut engine = InterleavedBatch::<8>::new();
        engine.schedule(&keys, 16).unwrap();
        assert_eq!(engine.scheduled(), 5);
        let mut out = vec![0u8; 5 * 40];
        engine.fill(&mut out, 40);
        assert_eq!(out, scalar_reference(&keys, 16, 40));
    }

    #[test]
    fn chunked_fills_continue_the_streams() {
        let keys = test_keys(4, 5);
        let mut engine = InterleavedBatch::<4>::new();
        engine.schedule(&keys, 5).unwrap();
        let mut head = vec![0u8; 4 * 13];
        let mut tail = vec![0u8; 4 * 19];
        engine.fill(&mut head, 13);
        engine.fill(&mut tail, 19);
        let whole = scalar_reference(&keys, 5, 32);
        for lane in 0..4 {
            assert_eq!(&head[lane * 13..(lane + 1) * 13], &whole[lane * 32..][..13]);
            assert_eq!(
                &tail[lane * 19..(lane + 1) * 19],
                &whole[lane * 32 + 13..][..19]
            );
        }
    }

    #[test]
    fn rescheduling_resets_every_lane() {
        let mut engine = DefaultBatch::new();
        let first = test_keys(DEFAULT_LANES, 16);
        engine.schedule(&first, 16).unwrap();
        let mut scratch = vec![0u8; DEFAULT_LANES * 64];
        engine.fill(&mut scratch, 64);

        let second = test_keys(3, 7);
        engine.schedule(&second, 7).unwrap();
        let mut out = vec![0u8; 3 * 24];
        engine.fill(&mut out, 24);
        assert_eq!(out, scalar_reference(&second, 7, 24));
    }

    #[test]
    fn scalar_batch_is_n_prgas() {
        let keys = test_keys(6, 16);
        let mut engine = ScalarBatch::new(8);
        engine.schedule(&keys, 16).unwrap();
        assert_eq!(engine.lanes(), 8);
        assert_eq!(engine.scheduled(), 6);
        let mut out = vec![0u8; 6 * 32];
        engine.fill(&mut out, 32);
        assert_eq!(out, scalar_reference(&keys, 16, 32));
    }

    #[test]
    fn engines_agree_on_rfc6229_vector() {
        // The 5-byte RFC 6229 key, replicated across lanes.
        let key = [0x01u8, 0x02, 0x03, 0x04, 0x05];
        let keys: Vec<u8> = key.repeat(DEFAULT_LANES);
        let mut engine = DefaultBatch::new();
        engine.schedule(&keys, 5).unwrap();
        let mut out = vec![0u8; DEFAULT_LANES * 16];
        engine.fill(&mut out, 16);
        let expected = [
            0xb2, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27, 0xcc, 0xc3, 0x52, 0x4a, 0x0a, 0x11,
            0x18, 0xa8,
        ];
        for lane in 0..DEFAULT_LANES {
            assert_eq!(&out[lane * 16..(lane + 1) * 16], &expected, "lane {lane}");
        }
    }

    #[test]
    fn invalid_key_length_is_rejected() {
        let mut engine = DefaultBatch::new();
        assert!(engine.schedule(&[0u8; 257], 257).is_err());
        let mut scalar = ScalarBatch::new(4);
        assert!(scalar.schedule(&[0u8; 257], 257).is_err());
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_key_buffer_panics() {
        let mut engine = DefaultBatch::new();
        let _ = engine.schedule(&[0u8; 17], 16);
    }

    #[test]
    #[should_panic(expected = "8-lane engine")]
    fn oversubscribed_batch_panics() {
        let mut engine = DefaultBatch::new();
        let _ = engine.schedule(&test_keys(DEFAULT_LANES + 1, 8), 8);
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn wrong_output_size_panics() {
        let mut engine = DefaultBatch::new();
        engine.schedule(&test_keys(4, 16), 16).unwrap();
        let mut out = vec![0u8; 3 * 8];
        engine.fill(&mut out, 8);
    }

    #[test]
    fn keystreams_batch_handles_tails() {
        // 37 keys: four full 8-lane batches plus a 5-key tail.
        let keys = test_keys(37, 16);
        let out = keystreams_batch(&keys, 16, 21).unwrap();
        assert_eq!(out, scalar_reference(&keys, 16, 21));
    }

    #[test]
    fn single_lane_interleaved_matches_scalar() {
        let keys = test_keys(1, 16);
        let mut engine = InterleavedBatch::<1>::new();
        engine.schedule(&keys, 16).unwrap();
        let mut out = vec![0u8; 256];
        engine.fill(&mut out, 256);
        assert_eq!(out, scalar_reference(&keys, 16, 256));
    }
}
