//! Property-based tests for the RC4 core.

use proptest::prelude::*;
use rc4::batch::{DefaultBatch, KeystreamBatch, ScalarBatch};
use rc4::{keystream, Ksa, Prga, Rc4, Rc4Drop};

proptest! {
    /// Encrypt-then-decrypt is the identity for any key and any plaintext.
    #[test]
    fn roundtrip(key in prop::collection::vec(any::<u8>(), 1..=64),
                 data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Rc4::new(&key).unwrap();
        let mut dec = Rc4::new(&key).unwrap();
        let ct = enc.encrypt(&data);
        prop_assert_eq!(dec.decrypt(&ct), data);
    }

    /// The keystream is deterministic and independent of how it is consumed
    /// (single bytes, bulk fill, or split into chunks).
    #[test]
    fn access_patterns_agree(key in prop::collection::vec(any::<u8>(), 1..=32),
                             split in 0usize..256,
                             len in 1usize..512) {
        let whole = keystream(&key, len).unwrap();

        let mut by_byte = Prga::new(&key).unwrap();
        let bytes: Vec<u8> = (0..len).map(|_| by_byte.next_byte()).collect();
        prop_assert_eq!(&bytes, &whole);

        let split = split.min(len);
        let mut chunked = Prga::new(&key).unwrap();
        let mut first = vec![0u8; split];
        chunked.fill(&mut first);
        let mut second = vec![0u8; len - split];
        chunked.fill(&mut second);
        first.extend(second);
        prop_assert_eq!(first, whole);
    }

    /// The KSA always produces a permutation, and the permutation property is
    /// preserved by arbitrarily many PRGA rounds.
    #[test]
    fn state_stays_a_permutation(key in prop::collection::vec(any::<u8>(), 1..=48),
                                 rounds in 0usize..4096) {
        let state = Ksa::schedule(&key).unwrap();
        prop_assert!(state.is_permutation());
        let mut prga = Prga::from_state(state);
        prga.skip(rounds);
        prop_assert!(prga.state().is_permutation());
    }

    /// RC4-drop[n] produces exactly the suffix of the plain keystream.
    #[test]
    fn drop_is_a_suffix(key in prop::collection::vec(any::<u8>(), 1..=16),
                        drop_n in 0usize..2048,
                        len in 1usize..128) {
        let full = keystream(&key, drop_n + len).unwrap();
        let mut dropped = Rc4Drop::new(&key, drop_n).unwrap();
        let mut data = vec![0u8; len];
        dropped.apply_keystream(&mut data);
        prop_assert_eq!(&data, &full[drop_n..]);
    }

    /// The interleaved batch engine is bit-identical to N scalar `Prga`
    /// streams for any batch size up to the lane count, any key length in
    /// 3..=32, and any stream offset (the two chunked fills below exercise
    /// continuation across an arbitrary split point).
    #[test]
    fn batch_matches_scalar_streams(n in 1usize..=16,
                                    key_len in 3usize..=32,
                                    split in 0usize..192,
                                    len in 1usize..=192,
                                    seed in any::<u64>()) {
        let n = n.min(rc4::batch::DEFAULT_LANES);
        // Derive n distinct keys deterministically from the seed.
        let mut keys = vec![0u8; n * key_len];
        let mut x = seed;
        for byte in keys.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *byte = (x >> 33) as u8;
        }

        let mut engine = DefaultBatch::new();
        engine.schedule(&keys, key_len).unwrap();
        prop_assert_eq!(engine.scheduled(), n);
        let split = split.min(len);
        let mut head = vec![0u8; n * split];
        let mut tail = vec![0u8; n * (len - split)];
        engine.fill(&mut head, split);
        engine.fill(&mut tail, len - split);

        for (lane, key) in keys.chunks_exact(key_len).enumerate() {
            let whole = keystream(key, len).unwrap();
            prop_assert_eq!(&head[lane * split..(lane + 1) * split], &whole[..split]);
            prop_assert_eq!(&tail[lane * (len - split)..(lane + 1) * (len - split)],
                            &whole[split..]);
        }
    }

    /// The scalar reference engine and the interleaved engine agree for every
    /// lane count (including non-powers of two via partial schedules).
    #[test]
    fn scalar_and_interleaved_engines_agree(n in 1usize..=16,
                                            key_len in 3usize..=32,
                                            len in 1usize..=128,
                                            seed in any::<u64>()) {
        let n = n.min(rc4::batch::DEFAULT_LANES);
        let mut keys = vec![0u8; n * key_len];
        let mut x = seed ^ 0x9E3779B97F4A7C15;
        for byte in keys.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *byte = (x >> 29) as u8;
        }
        let mut fast = DefaultBatch::new();
        let mut reference = ScalarBatch::new(16);
        fast.schedule(&keys, key_len).unwrap();
        reference.schedule(&keys, key_len).unwrap();
        let mut a = vec![0u8; n * len];
        let mut b = vec![0u8; n * len];
        fast.fill(&mut a, len);
        reference.fill(&mut b, len);
        prop_assert_eq!(a, b);
    }

    /// Two different keys (almost) never generate the same initial keystream;
    /// more precisely, whenever they do differ in the first 16 bytes the
    /// ciphertexts of the same plaintext differ too.
    #[test]
    fn distinct_keys_give_distinct_ciphertexts(a in prop::collection::vec(any::<u8>(), 16),
                                               b in prop::collection::vec(any::<u8>(), 16)) {
        prop_assume!(a != b);
        let ks_a = keystream(&a, 16).unwrap();
        let ks_b = keystream(&b, 16).unwrap();
        if ks_a != ks_b {
            let mut ca = Rc4::new(&a).unwrap();
            let mut cb = Rc4::new(&b).unwrap();
            prop_assert_ne!(ca.encrypt(b"same plaintext!!"), cb.encrypt(b"same plaintext!!"));
        }
    }
}
