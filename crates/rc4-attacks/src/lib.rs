//! Top-level crate of the reproduction: experiment registry, simulation
//! drivers and report formatting for every table and figure of the paper.
//!
//! The lower-level crates implement the pieces (RC4, statistics, bias
//! catalogue, likelihood machinery, the TKIP and TLS substrates); this crate
//! assembles them into the concrete experiments of the evaluation:
//!
//! | Experiment | Module |
//! |---|---|
//! | Table 1 / Fig. 4 — Fluhrer–McGrew digraphs, long-term and short-term | [`experiments::biases`] |
//! | Table 2 / Eq. 3–5 — new short-term biases | [`experiments::biases`] |
//! | Fig. 5 — influence of `Z_1`/`Z_2` | [`experiments::biases`] |
//! | Fig. 6 — single-byte biases beyond position 256 | [`experiments::biases`] |
//! | §3.4 — long-term `256`-aligned biases | [`experiments::biases`] |
//! | Fig. 7 — two-byte recovery: ABSAB vs FM vs combined | [`experiments::fig7`] |
//! | Fig. 8 / Fig. 9 — TKIP MIC-key recovery | [`experiments::fig8`] |
//! | Fig. 10 — HTTPS cookie brute force | [`experiments::fig10`] |
//! | Sect. 5 — end-to-end WPA-TKIP attack | [`experiments::tkip_attack`] |
//! | Sect. 6 — end-to-end HTTPS cookie attack | [`experiments::tls_cookie`] |
//! | Streaming `--until-confident` variants with early stopping | [`experiments::streaming`] |
//!
//! Every experiment implements the [`Experiment`] trait — a
//! serde-roundtrippable config with per-scale defaults plus a deterministic
//! `run(&ExperimentContext)` — and is registered in
//! [`Registry::with_defaults`], which drivers like `repro` iterate instead of
//! hardcoding experiment lists. The [`ExperimentContext`] carries the global
//! seed, worker count, progress sink and cooperative cancellation flag. Each
//! run returns a [`report::ExperimentReport`] that the `repro` binary renders
//! and that `EXPERIMENTS.md` summarizes.
//!
//! Because the paper-scale data volumes (`2^44+` keys, `2^27`–`2^31`
//! ciphertexts) are not laptop-feasible, attack experiments support a
//! *sampled mode*: instead of generating every ciphertext, the per-position
//! count vectors are drawn from the same multinomial distributions the
//! likelihood analysis assumes (normal approximation per cell). DESIGN.md
//! documents why this substitution preserves the qualitative results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiment;
pub mod experiments;
pub mod registry;
pub mod report;
pub mod sampling;

pub use context::{CancelHandle, EventSink, ExperimentContext, ProgressEvent};
pub use experiment::Experiment;
pub use registry::Registry;
pub use report::{ExperimentReport, ReportRow};

/// Errors surfaced by the experiment drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// Invalid experiment configuration.
    InvalidConfig(String),
    /// A lower-level component failed.
    Component(String),
    /// The run's cooperative cancellation flag was raised mid-experiment.
    Cancelled,
    /// A registry lookup failed; carries every registered name so callers can
    /// print an always-current list.
    UnknownExperiment {
        /// The name that was requested.
        name: String,
        /// All registered primary names, in registration order.
        registered: Vec<String>,
    },
}

impl core::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExperimentError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ExperimentError::Component(msg) => write!(f, "component failure: {msg}"),
            ExperimentError::Cancelled => write!(f, "experiment cancelled"),
            ExperimentError::UnknownExperiment { name, registered } => write!(
                f,
                "unknown experiment '{name}'; registered experiments: {}",
                registered.join(", ")
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<rc4_stats::DatasetError> for ExperimentError {
    fn from(e: rc4_stats::DatasetError) -> Self {
        match e {
            rc4_stats::DatasetError::Cancelled => ExperimentError::Cancelled,
            other => ExperimentError::Component(other.to_string()),
        }
    }
}

impl From<stat_tests::StatError> for ExperimentError {
    fn from(e: stat_tests::StatError) -> Self {
        ExperimentError::Component(e.to_string())
    }
}

impl From<plaintext_recovery::RecoveryError> for ExperimentError {
    fn from(e: plaintext_recovery::RecoveryError) -> Self {
        match e {
            plaintext_recovery::RecoveryError::Cancelled => ExperimentError::Cancelled,
            other => ExperimentError::Component(other.to_string()),
        }
    }
}

/// Executor outcomes fold back into the experiment error model: a cancelled
/// parallel stage IS a cancelled experiment, and a task failure surfaces as
/// the task's own error.
impl From<rc4_exec::ExecError<ExperimentError>> for ExperimentError {
    fn from(e: rc4_exec::ExecError<ExperimentError>) -> Self {
        match e {
            rc4_exec::ExecError::Cancelled => ExperimentError::Cancelled,
            rc4_exec::ExecError::Task { error, .. } => error,
        }
    }
}

impl From<wpa_tkip::TkipError> for ExperimentError {
    fn from(e: wpa_tkip::TkipError) -> Self {
        ExperimentError::Component(e.to_string())
    }
}

impl From<tls_rc4::TlsError> for ExperimentError {
    fn from(e: tls_rc4::TlsError) -> Self {
        match e {
            tls_rc4::TlsError::Cancelled => ExperimentError::Cancelled,
            other => ExperimentError::Component(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e = ExperimentError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        let from_stats: ExperimentError =
            rc4_stats::DatasetError::InvalidConfig("keys".into()).into();
        assert!(matches!(from_stats, ExperimentError::Component(_)));
        let from_tkip: ExperimentError = wpa_tkip::TkipError::IntegrityFailure("ICV").into();
        assert!(from_tkip.to_string().contains("ICV"));
        let cancelled: ExperimentError = rc4_stats::DatasetError::Cancelled.into();
        assert_eq!(cancelled, ExperimentError::Cancelled);
        let unknown = ExperimentError::UnknownExperiment {
            name: "fig99".into(),
            registered: vec!["fig7".into(), "fig8".into()],
        };
        let msg = unknown.to_string();
        assert!(msg.contains("fig99") && msg.contains("fig7, fig8"));
    }
}
