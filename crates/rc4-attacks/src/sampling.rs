//! Random sampling helpers for the sampled-mode experiment drivers.
//!
//! The attack experiments need count vectors distributed as
//! `Multinomial(n, p)` for very large `n` (up to the paper's `2^31`
//! ciphertexts). Generating `n` individual observations is infeasible, so the
//! drivers use the standard per-cell normal approximation
//! `N_k ≈ round(n p_k + sqrt(n p_k (1 - p_k)) · z_k)` with independent standard
//! normals `z_k` — accurate for the regimes of interest where every cell's
//! expectation is far above 1, and exactly the approximation under which the
//! paper's own success-rate estimates are derived.
//!
//! Exact multinomial sampling (used by the exact-mode drivers and the tests
//! that validate the approximation) is provided as well.

use rand::Rng;
use rc4_stats::splitmix64;

/// Derives an independent RNG stream seed from a base seed and a path of
/// coordinates (sweep point, strategy, trial, ...), by chaining a
/// [`splitmix64`] absorption step per coordinate (the same primitive
/// `rc4_stats::KeyGenerator` derives its per-worker key streams from).
///
/// This is what makes the Monte-Carlo hot loops parallelizable WITHOUT
/// giving up determinism: instead of threading one RNG through all trials
/// (which orders them), every trial seeds its own `StdRng` from
/// `stream_seed(base, &[point, strategy, trial])`, so the set of draws — and
/// therefore every aggregate in the report — depends only on the
/// configuration, never on scheduling or worker count.
pub fn stream_seed(base: u64, path: &[u64]) -> u64 {
    let mut state = splitmix64(base ^ 0x5EED_5EED_5EED_5EED);
    for &coordinate in path {
        state = splitmix64(state ^ splitmix64(coordinate.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    }
    state
}

/// Draws an (approximately) multinomial count vector for `n` trials over `probs`
/// using the per-cell normal approximation.
///
/// Cell counts are clamped at zero; the result's total is close to, but not
/// exactly, `n` — callers that need the exact total (e.g. as the `|C|` constant
/// in a likelihood) should use the returned vector's sum.
pub fn sample_counts_normal(probs: &[f64], n: u64, rng: &mut impl Rng) -> Vec<u64> {
    let n_f = n as f64;
    probs
        .iter()
        .map(|&p| {
            if p <= 0.0 {
                return 0;
            }
            let mean = n_f * p;
            let sd = (n_f * p * (1.0 - p)).sqrt();
            let z = sample_standard_normal(rng);
            let v = mean + sd * z;
            if v < 0.0 {
                0
            } else {
                v.round() as u64
            }
        })
        .collect()
}

/// Draws an exact multinomial count vector for `n` trials over `probs` by
/// sequential binomial splitting.
///
/// Complexity is `O(len(probs) + n)` in the worst case of the binomial sampler,
/// so this is only suitable for moderate `n`; the experiments use it for
/// validation and for exact-mode runs at reduced scale.
pub fn sample_counts_exact(probs: &[f64], n: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut remaining_n = n;
    let mut remaining_p = 1.0f64;
    let mut out = Vec::with_capacity(probs.len());
    for (idx, &p) in probs.iter().enumerate() {
        if remaining_n == 0 || remaining_p <= 0.0 {
            out.push(0);
            continue;
        }
        if idx == probs.len() - 1 {
            out.push(remaining_n);
            remaining_n = 0;
            continue;
        }
        let cond = (p / remaining_p).clamp(0.0, 1.0);
        let draw = sample_binomial(remaining_n, cond, rng);
        out.push(draw);
        remaining_n -= draw;
        remaining_p -= p;
    }
    out
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `Binomial(n, p)`.
///
/// Uses direct Bernoulli summation for small `n` and a clamped normal
/// approximation for large `n` (adequate for the simulation drivers; the tails
/// we care about are near the mean).
pub fn sample_binomial(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 4096 {
        let mut count = 0u64;
        for _ in 0..n {
            if rng.gen_bool(p) {
                count += 1;
            }
        }
        count
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let v = mean + sd * sample_standard_normal(rng);
        v.round().clamp(0.0, n as f64) as u64
    }
}

/// Draws a value index from a discrete distribution (inverse-CDF sampling).
pub fn sample_index(probs: &[f64], rng: &mut impl Rng) -> usize {
    let mut u: f64 = rng.gen();
    for (idx, &p) in probs.iter().enumerate() {
        if u < p {
            return idx;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn stream_seeds_are_stable_and_distinct() {
        // Stable across calls, sensitive to every coordinate and to order.
        assert_eq!(stream_seed(7, &[1, 2, 3]), stream_seed(7, &[1, 2, 3]));
        assert_ne!(stream_seed(7, &[1, 2, 3]), stream_seed(8, &[1, 2, 3]));
        assert_ne!(stream_seed(7, &[1, 2, 3]), stream_seed(7, &[1, 2, 4]));
        assert_ne!(stream_seed(7, &[1, 2, 3]), stream_seed(7, &[3, 2, 1]));
        assert_ne!(stream_seed(7, &[0]), stream_seed(7, &[0, 0]));
        // Nearby trial indices must give well-separated seeds.
        let mut seen = std::collections::HashSet::new();
        for trial in 0..10_000u64 {
            assert!(seen.insert(stream_seed(0, &[0, 0, trial])));
        }
    }

    #[test]
    fn normal_sampler_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn binomial_sampler_small_and_large() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = sample_binomial(100, 0.3, &mut rng);
        assert!(small <= 100);
        let large = sample_binomial(1_000_000, 0.25, &mut rng);
        let expected = 250_000.0;
        assert!((large as f64 - expected).abs() < 5.0 * (1_000_000.0f64 * 0.25 * 0.75).sqrt());
        assert_eq!(sample_binomial(50, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(50, 1.0, &mut rng), 50);
    }

    #[test]
    fn exact_multinomial_totals_and_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.5, 0.25, 0.125, 0.125];
        let counts = sample_counts_exact(&probs, 100_000, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
        assert!((counts[0] as f64 - 50_000.0).abs() < 2_000.0);
        assert!((counts[3] as f64 - 12_500.0).abs() < 1_500.0);
    }

    #[test]
    fn normal_approximation_close_to_exact_in_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let probs = vec![1.0 / 256.0; 256];
        let n = 1u64 << 24;
        let counts = sample_counts_normal(&probs, n, &mut rng);
        assert_eq!(counts.len(), 256);
        let expected = n as f64 / 256.0;
        for &c in &counts {
            // Each cell must be within ~6 standard deviations of its mean.
            assert!((c as f64 - expected).abs() < 6.0 * expected.sqrt());
        }
        let total: u64 = counts.iter().sum();
        assert!((total as f64 - n as f64).abs() < 0.01 * n as f64);
    }

    #[test]
    fn zero_probability_cells_get_zero_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let probs = [0.0, 1.0, 0.0];
        let c = sample_counts_normal(&probs, 1000, &mut rng);
        assert_eq!(c[0], 0);
        assert_eq!(c[2], 0);
        let e = sample_counts_exact(&probs, 1000, &mut rng);
        assert_eq!(e[0], 0);
        assert_eq!(e[1], 1000);
    }

    #[test]
    fn index_sampler_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(6);
        let probs = [0.1, 0.7, 0.2];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
        assert!((counts[1] as f64 / 10_000.0 - 0.7).abs() < 0.05);
    }
}
