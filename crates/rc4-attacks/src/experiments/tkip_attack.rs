//! The `tkip-attack` experiment: the Section-5 WPA-TKIP attack end to end,
//! promoted from the `wpa_tkip_attack` example into a registered experiment
//! so the full paper pipeline is reachable from the registry.
//!
//! One run walks the complete attack story:
//!
//! 1. build the injected TCP packet (LLC/SNAP + IPv4 + TCP + 7-byte payload,
//!    placing the MIC/ICV trailer in the strongly biased keystream region),
//! 2. round-trip it through real TKIP encapsulation (per-packet key mixing,
//!    Michael, ICV) on a software network,
//! 3. sniff encrypted copies with the injection/capture simulator, and
//! 4. run the statistical MIC-key recovery — per-TSC trailer statistics →
//!    likelihoods → Algorithm-1 candidates → ICV pruning → Michael
//!    inversion — over several trials, then forge a packet with each
//!    recovered key and check the receiver accepts it.
//!
//! The keystream model for the recovery trials is the synthetic per-TSC model
//! (DESIGN.md substitution #2) so laptop runs finish in seconds; its bias
//! strength and the capture budget are the main scale knobs.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crypto_prims::{crc32, michael::MichaelKey};
use wpa_tkip::{
    attack::{recover_mic_key, AttackConfig, TrailerStatistics},
    injection::{InjectionConfig, InjectionSimulator},
    model::{TkipKeystreamModel, TscClassing},
    mpdu::{decapsulate, encapsulate, FrameAddressing, TRAILER_LEN},
    net::{build_tcp_msdu, Ipv4Header, TcpHeader},
    Tsc,
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::Scale,
    report::{format_percent, ExperimentReport},
    sampling::{sample_index, stream_seed},
    ExperimentError,
};

/// Configuration of the end-to-end TKIP attack experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TkipAttackConfig {
    /// Encrypted copies captured per recovery trial (the live attack gathers
    /// `~9.5 x 2^20`).
    pub captures: u64,
    /// Number of independent recovery trials (fresh MIC key each).
    pub trials: usize,
    /// Candidate-list budget for the MIC/ICV search (the paper uses `~2^30`).
    pub max_candidates: usize,
    /// Relative bias of the synthetic per-TSC keystream model.
    pub relative_bias: f64,
    /// Captures taken from the real-RC4 injection simulator in the
    /// capture-pipeline stage (exercises encapsulation + sniffing, not the
    /// statistics).
    pub injection_captures: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TkipAttackConfig {
    fn default() -> Self {
        TkipAttackConfig::for_scale(Scale::Laptop)
    }
}

impl TkipAttackConfig {
    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // A strong synthetic bias keeps quick runs reliable with few
            // captures (the same trade the wpa-tkip genie test makes).
            Scale::Quick => Self {
                captures: 5_000,
                trials: 3,
                max_candidates: 1 << 10,
                relative_bias: 4.0,
                injection_captures: 256,
                seed: 0x7C1B,
            },
            Scale::Laptop => Self {
                captures: 1 << 14,
                trials: 8,
                max_candidates: 1 << 14,
                relative_bias: 1.0,
                injection_captures: 2_000,
                seed: 0x7C1B,
            },
            Scale::Extended => Self {
                captures: 1 << 17,
                trials: 16,
                max_candidates: 1 << 18,
                relative_bias: 0.3,
                injection_captures: 10_000,
                seed: 0x7C1B,
            },
        }
    }
}

/// The fixed frame addressing of the software network.
fn addressing() -> FrameAddressing {
    FrameAddressing {
        dst: [0x00, 0x1f, 0x33, 0x44, 0x55, 0x66],
        src: [0x00, 0x1f, 0x33, 0x77, 0x88, 0x99],
        transmitter: [0x00, 0x1f, 0x33, 0x77, 0x88, 0x99],
        priority: 0,
    }
}

/// The injected packet of Sect. 5.2: a TCP segment with a 7-byte payload,
/// chosen so the MSDU is 55 bytes and the trailer sits at positions 56..=67.
fn injected_msdu() -> Vec<u8> {
    let ip = Ipv4Header::tcp([192, 168, 1, 7], [203, 0, 113, 10], 7, 64);
    let tcp = TcpHeader {
        src_port: 52311,
        dst_port: 80,
        seq: 0x1000_0000,
        ack: 0x2000_0000,
        flags: 0x18,
        window: 29200,
    };
    build_tcp_msdu(&ip, &tcp, b"ATTACK!")
}

/// Runs the end-to-end attack and returns the report.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for degenerate configurations,
/// [`ExperimentError::Cancelled`] when the context flag is raised, and
/// propagates component errors.
pub fn run_with_context(
    config: &TkipAttackConfig,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    if config.captures == 0 || config.trials == 0 || config.max_candidates == 0 {
        return Err(ExperimentError::InvalidConfig(
            "captures, trials and max_candidates must all be > 0".into(),
        ));
    }
    let seed = ctx.mix_seed(config.seed);
    let addressing = addressing();
    let msdu = injected_msdu();

    let mut report = ExperimentReport::new(
        "tkip-attack",
        "End-to-end WPA-TKIP MIC-key recovery and packet forgery (Sect. 5)",
        &["stage", "metric", "value"],
    );
    report.note(format!(
        "{} captures x {} trials, candidate budget {}, synthetic per-TSC model bias {} \
         (live attack: ~9.5 x 2^20 captures, ~2^30 candidates)",
        config.captures, config.trials, config.max_candidates, config.relative_bias
    ));

    // Stage 1: the injected packet and where its trailer lands.
    ctx.checkpoint()?;
    report.push_row(&[
        "injected packet".to_string(),
        "MSDU bytes / trailer keystream positions".to_string(),
        format!("{} / {}..{}", msdu.len(), msdu.len() + 1, msdu.len() + 12),
    ]);

    // Stage 2: real TKIP encapsulation round-trip on the software network.
    let tk = [0xA5u8; 16];
    let network_mic_key = MichaelKey {
        l: 0x1234_5678,
        r: 0x9ABC_DEF0,
    };
    let mpdu = encapsulate(&tk, network_mic_key, &addressing, Tsc(1), &msdu);
    let round_trip = decapsulate(&tk, network_mic_key, &addressing, &mpdu)
        .map(|plain| plain == msdu)
        .unwrap_or(false);
    report.push_row(&[
        "encapsulation".to_string(),
        "encapsulate/decapsulate round-trip".to_string(),
        if round_trip { "ok" } else { "FAILED" }.to_string(),
    ]);

    // Stage 3: injection/capture pipeline over real RC4.
    ctx.checkpoint()?;
    let mut sim = InjectionSimulator::new(
        tk,
        network_mic_key,
        addressing,
        msdu.clone(),
        InjectionConfig {
            seed,
            ..InjectionConfig::default()
        },
    )
    .map_err(ExperimentError::from)?;
    let captured = sim.capture(config.injection_captures);
    report.push_row(&[
        "capture".to_string(),
        "unique encrypted copies (real RC4)".to_string(),
        captured.len().to_string(),
    ]);
    report.push_row(&[
        "capture".to_string(),
        "hours for 9.5 x 2^20 captures at 2500 pkt/s".to_string(),
        format!(
            "{:.1}",
            sim.seconds_for((9.5 * (1u64 << 20) as f64) as u64) / 3600.0
        ),
    ]);

    // Stage 4: statistical MIC-key recovery trials against the synthetic
    // per-TSC keystream model, plus forgery with every recovered key.
    let model = TkipKeystreamModel::synthetic(
        TscClassing::Tsc1,
        msdu.len() + 1,
        TRAILER_LEN,
        config.relative_bias,
    );
    // Monte-Carlo recovery trials: each trial is an independent simulation
    // (fresh MIC key, fresh captures) seeded from its own RNG stream, fanned
    // out across the executor. The per-trial outcome is the candidate index
    // when the key was recovered, plus whether the forged packet was
    // accepted.
    let reporter = ctx.progress("tkip-attack", config.trials as u64, "trial");
    let outcomes: Vec<Option<(usize, bool)>> = ctx
        .executor()
        .map((0..config.trials).collect(), |_, trial| {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ 0xA77A, &[trial as u64]));
            let mic_key = MichaelKey {
                l: rng.gen(),
                r: rng.gen(),
            };
            // True trailer for the injected packet under this trial's MIC key.
            let mut mic_input = Vec::with_capacity(16 + msdu.len());
            mic_input.extend_from_slice(&addressing.michael_header());
            mic_input.extend_from_slice(&msdu);
            let mic = crypto_prims::michael::michael(mic_key, &mic_input);
            let mut body = msdu.clone();
            body.extend_from_slice(&mic);
            let icv = crc32::icv(&body);
            let mut trailer_plain = mic.to_vec();
            trailer_plain.extend_from_slice(&icv);

            // Sample captures from the model's per-class distributions.
            let mut stats =
                TrailerStatistics::new(256, msdu.len()).map_err(ExperimentError::from)?;
            for i in 0..config.captures {
                if i % 4096 == 0 {
                    ctx.checkpoint()?;
                }
                let tsc = Tsc(i + 1);
                let class = model.class_of(tsc);
                let mut ct = vec![0u8; msdu.len() + TRAILER_LEN];
                for (idx, slot) in ct.iter_mut().enumerate().skip(msdu.len()).take(TRAILER_LEN) {
                    let dist = model.distribution(class, idx + 1);
                    let z = sample_index(dist, &mut rng) as u8;
                    *slot = trailer_plain[idx - msdu.len()] ^ z;
                }
                stats.add(class, &ct).map_err(ExperimentError::from)?;
            }

            let attack_config = AttackConfig {
                max_candidates: config.max_candidates,
            };
            let mut outcome_cell = None;
            if let Ok(outcome) = recover_mic_key(&stats, &model, &msdu, &addressing, &attack_config)
            {
                if outcome.mic_key == mic_key {
                    // With the recovered key the attacker forges a new packet
                    // the receiver accepts (the Sect.-5 end state).
                    let forged_msdu = b"FORGED-BY-MIC-KEY".to_vec();
                    let forged = encapsulate(
                        &tk,
                        outcome.mic_key,
                        &addressing,
                        Tsc(0xFFFF + trial as u64),
                        &forged_msdu,
                    );
                    let accepted = decapsulate(&tk, mic_key, &addressing, &forged)
                        .map(|plain| plain == forged_msdu)
                        .unwrap_or(false);
                    outcome_cell = Some((outcome.candidate_index, accepted));
                }
            }
            reporter.tick(1);
            Ok::<_, ExperimentError>(outcome_cell)
        })
        .map_err(ExperimentError::from)?;

    let recovered = outcomes.iter().flatten().count();
    let forged_accepted = outcomes.iter().flatten().filter(|&&(_, f)| f).count();
    let mut candidate_indices: Vec<usize> =
        outcomes.iter().flatten().map(|&(index, _)| index).collect();
    candidate_indices.sort_unstable();
    report.push_row(&[
        "mic-key recovery".to_string(),
        "MIC keys recovered".to_string(),
        format_percent(recovered as f64 / config.trials as f64),
    ]);
    report.push_row(&[
        "mic-key recovery".to_string(),
        "median candidate index (fig 9 quantity)".to_string(),
        candidate_indices
            .get(candidate_indices.len() / 2)
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_string()),
    ]);
    report.push_row(&[
        "forgery".to_string(),
        "forged packets accepted by the receiver".to_string(),
        format_percent(forged_accepted as f64 / config.trials as f64),
    ]);
    Ok(report)
}

/// [`Experiment`] carrier for the end-to-end TKIP attack.
pub struct TkipAttackExperiment {
    config: TkipAttackConfig,
}

impl TkipAttackExperiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: TkipAttackConfig::for_scale(Scale::Laptop),
        }
    }
}

impl Default for TkipAttackExperiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for TkipAttackExperiment {
    fn name(&self) -> &'static str {
        "tkip-attack"
    }

    fn summary(&self) -> &'static str {
        "End-to-end WPA-TKIP attack: inject, capture, recover the MIC key, forge (Sect. 5)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = TkipAttackConfig::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: "tkip-attack",
        });
        let report = run_with_context(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: "tkip-attack",
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_and_config_roundtrip() {
        let bad = TkipAttackConfig {
            trials: 0,
            ..TkipAttackConfig::for_scale(Scale::Quick)
        };
        assert!(run_with_context(&bad, &ExperimentContext::default()).is_err());

        let config = TkipAttackConfig::for_scale(Scale::Quick);
        let json = serde_json::to_string(&config).unwrap();
        let back: TkipAttackConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn quick_run_recovers_mic_keys_and_forges() {
        let mut exp = TkipAttackExperiment::new();
        exp.apply_scale(Scale::Quick);
        let report = exp.run(&ExperimentContext::default()).unwrap();
        assert_eq!(report.id, "tkip-attack");
        let cell = |stage: &str, metric_contains: &str| {
            report
                .rows
                .iter()
                .find(|r| r.cells[0] == stage && r.cells[1].contains(metric_contains))
                .map(|r| r.cells[2].clone())
                .unwrap_or_else(|| panic!("missing row {stage}/{metric_contains}"))
        };
        assert_eq!(cell("encapsulation", "round-trip"), "ok");
        // With the strong quick-scale synthetic bias every trial must recover
        // the MIC key and every recovered key must forge successfully.
        assert_eq!(cell("mic-key recovery", "MIC keys recovered"), "100.0%");
        assert_eq!(cell("forgery", "accepted"), "100.0%");
    }

    #[test]
    fn cancellation_aborts() {
        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        let mut exp = TkipAttackExperiment::new();
        exp.apply_scale(Scale::Quick);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }
}
