//! Fig. 8 and Fig. 9: TKIP MIC-key recovery.
//!
//! Fig. 8 plots the probability of recovering the MIC key as a function of the
//! number of captured copies of the injected packet (in multiples of `2^20`),
//! comparing a candidate list of nearly `2^30` entries against using only the
//! two most likely candidates. Fig. 9 plots the median position in the
//! candidate list of the first candidate with a correct ICV.
//!
//! Paper scale needs per-(TSC0, TSC1) keystream distributions built from
//! `2^32` keys per class (10 CPU-years) and `~10^7` captures per trial. The
//! reproduction keeps the complete attack pipeline (per-class counts →
//! combined likelihoods → Algorithm-1 candidates → ICV pruning → Michael
//! inversion) and offers two traffic models:
//!
//! * **Synthetic** — per-TSC1 distributions with a configurable relative bias;
//!   captures are sampled from exactly those distributions. The curves have
//!   the paper's shape at laptop-friendly capture counts.
//! * **Empirical** — per-TSC1 distributions measured from real TKIP-structured
//!   RC4 keys (`rc4-stats`), with captures produced by real TKIP
//!   encapsulation. This is the faithful path; reaching high success rates
//!   requires capture counts that grow towards the paper's numbers.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{DeError, Deserialize, Serialize, Value};

use crypto_prims::{crc32, michael::MichaelKey};
use plaintext_recovery::candidates::generate_candidates;
use plaintext_recovery::charset::Charset;
use wpa_tkip::{
    attack::{find_consistent_candidate, TrailerStatistics},
    model::{TkipKeystreamModel, TscClassing},
    mpdu::FrameAddressing,
    Tsc,
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::{Scale, DATASET_STREAMS},
    report::{format_percent, ExperimentReport},
    sampling::{sample_index, stream_seed},
    ExperimentError,
};

/// Traffic/keystream model used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TkipTrafficModel {
    /// Synthetic per-TSC1 distributions with the given relative bias strength.
    Synthetic {
        /// Relative bias of the favoured keystream value per class/position.
        relative_bias: f64,
    },
    /// Empirical per-TSC1 distributions measured from `keys` TKIP-structured keys.
    Empirical {
        /// Number of keys used to estimate the per-class distributions.
        keys: u64,
    },
}

/// Serialized as a tagged object: `{"kind": "synthetic", "relative_bias": x}`
/// or `{"kind": "empirical", "keys": n}`. Hand-written because the vendored
/// serde derive only covers unit-variant enums.
impl Serialize for TkipTrafficModel {
    fn to_value(&self) -> Value {
        match self {
            TkipTrafficModel::Synthetic { relative_bias } => Value::Object(vec![
                ("kind".into(), Value::Str("synthetic".into())),
                ("relative_bias".into(), relative_bias.to_value()),
            ]),
            TkipTrafficModel::Empirical { keys } => Value::Object(vec![
                ("kind".into(), Value::Str("empirical".into())),
                ("keys".into(), keys.to_value()),
            ]),
        }
    }
}

impl Deserialize for TkipTrafficModel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "synthetic" => Ok(TkipTrafficModel::Synthetic {
                relative_bias: f64::from_value(v.field("relative_bias")?)?,
            }),
            "empirical" => Ok(TkipTrafficModel::Empirical {
                keys: u64::from_value(v.field("keys")?)?,
            }),
            other => Err(DeError(format!(
                "unknown traffic model kind '{other}' (expected synthetic | empirical)"
            ))),
        }
    }
}

/// Configuration of the Fig. 8 / Fig. 9 simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Capture counts to sweep (the paper sweeps `1..=15 x 2^20`).
    pub capture_counts: Vec<u64>,
    /// Simulations per point (the paper uses 256).
    pub trials: usize,
    /// Candidate-list budget (the paper uses nearly `2^30`).
    pub max_candidates: usize,
    /// Known payload length of the injected packet (55 with the 7-byte TCP payload).
    pub payload_len: usize,
    /// Traffic model.
    pub model: TkipTrafficModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Self {
            capture_counts: vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16],
            trials: 32,
            max_candidates: 1 << 16,
            payload_len: 55,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.2 },
            seed: 0xF168,
        }
    }
}

impl Fig8Config {
    /// Seconds-long configuration for tests.
    pub fn quick() -> Self {
        Self {
            capture_counts: vec![1 << 10, 1 << 13],
            trials: 6,
            max_candidates: 1 << 10,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.8 },
            ..Self::default()
        }
    }

    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self::quick(),
            Scale::Laptop => Self::default(),
            Scale::Extended => Self {
                capture_counts: vec![1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 21],
                trials: 64,
                max_candidates: 1 << 20,
                model: TkipTrafficModel::Empirical { keys: 1 << 22 },
                ..Self::default()
            },
        }
    }
}

/// Per-point aggregate of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Number of captures per trial.
    pub captures: u64,
    /// MIC-key recovery rate using the full candidate list.
    pub success_full_list: f64,
    /// MIC-key recovery rate using only the two best candidates.
    pub success_top2: f64,
    /// Median candidate-list position of the first correct-ICV candidate
    /// (over successful trials), `None` when no trial succeeded.
    pub median_position: Option<usize>,
}

/// Runs the Fig. 8 / Fig. 9 simulation and returns both the per-point data and
/// a rendered report.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] on an empty sweep and propagates
/// component errors.
pub fn run(config: &Fig8Config) -> Result<(Vec<Fig8Point>, ExperimentReport), ExperimentError> {
    run_with_context(config, &ExperimentContext::default())
}

/// [`run`] under an explicit [`ExperimentContext`]: the context seed is mixed
/// into `config.seed`, progress is reported per sweep point, and cancellation
/// is honoured between trials and capture batches.
///
/// # Errors
///
/// Everything [`run`] returns, plus [`ExperimentError::Cancelled`].
pub fn run_with_context(
    config: &Fig8Config,
    ctx: &ExperimentContext,
) -> Result<(Vec<Fig8Point>, ExperimentReport), ExperimentError> {
    if config.capture_counts.is_empty() || config.trials == 0 {
        return Err(ExperimentError::InvalidConfig(
            "need at least one capture count and one trial".into(),
        ));
    }
    let seed = ctx.mix_seed(config.seed);
    let first_position = config.payload_len + 1;
    ctx.checkpoint()?;
    let model_span = rc4_obs::Span::enter("fig8.build_model");
    let model = match config.model {
        TkipTrafficModel::Synthetic { relative_bias } => TkipKeystreamModel::synthetic(
            TscClassing::Tsc1,
            first_position,
            wpa_tkip::mpdu::TRAILER_LEN,
            relative_bias,
        ),
        TkipTrafficModel::Empirical { keys } => {
            let positions = first_position + wpa_tkip::mpdu::TRAILER_LEN;
            // Fixed stream count (dataset identity), threads from the
            // context executor — see `experiments::DATASET_STREAMS`.
            let gen_config = rc4_stats::GenerationConfig::with_keys(keys)
                .seed(seed ^ 0xE)
                .workers(DATASET_STREAMS);
            let ds = ctx.load_or_generate(
                rc4_stats::tsc::PerTscDataset::new(
                    rc4_stats::tsc::TscConditioning::Tsc1,
                    positions,
                )?,
                &gen_config,
                |ds| {
                    ds.generate_into_with_exec(&gen_config, &ctx.executor())?;
                    Ok(())
                },
            )?;
            let mut probs = Vec::with_capacity(256 * wpa_tkip::mpdu::TRAILER_LEN * 256);
            for class in 0..256 {
                for pos in first_position..first_position + wpa_tkip::mpdu::TRAILER_LEN {
                    probs.extend(ds.distribution(class, pos));
                }
            }
            TkipKeystreamModel::from_probabilities(
                TscClassing::Tsc1,
                first_position,
                wpa_tkip::mpdu::TRAILER_LEN,
                probs,
            )?
        }
    };
    drop(model_span);

    let addressing = FrameAddressing {
        dst: [0x00, 0x1f, 0x33, 0x44, 0x55, 0x66],
        src: [0x00, 0x1f, 0x33, 0x77, 0x88, 0x99],
        transmitter: [0x00, 0x1f, 0x33, 0x77, 0x88, 0x99],
        priority: 0,
    };

    // Monte-Carlo grid: one independent simulation per (point, trial), each
    // seeded from its own RNG stream, fanned out across the executor. The
    // per-trial outcome is (candidate index if an ICV-consistent candidate
    // was found, whether it was the true trailer).
    let trials = config.trials;
    let mut grid = Vec::with_capacity(config.capture_counts.len() * trials);
    for point in 0..config.capture_counts.len() {
        for trial in 0..trials {
            grid.push((point, trial));
        }
    }
    let reporter = ctx.progress("fig8", grid.len() as u64, "trial");
    let trials_span = rc4_obs::Span::enter_with(
        "fig8.trials",
        rc4_obs::kv! {
            "points" => config.capture_counts.len(),
            "trials" => trials,
        },
    );
    let outcomes: Vec<Option<(usize, bool)>> = ctx
        .executor()
        .map(grid, |_, (point, trial)| {
            let captures = config.capture_counts[point];
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, &[point as u64, trial as u64]));
            // A fresh injected packet per trial: random payload, random MIC key.
            let payload: Vec<u8> = (0..config.payload_len).map(|_| rng.gen()).collect();
            let mic_key = MichaelKey {
                l: rng.gen(),
                r: rng.gen(),
            };
            let mut mic_input = Vec::with_capacity(16 + payload.len());
            mic_input.extend_from_slice(&addressing.michael_header());
            mic_input.extend_from_slice(&payload);
            let mic = crypto_prims::michael::michael(mic_key, &mic_input);
            let mut body = payload.clone();
            body.extend_from_slice(&mic);
            let icv = crc32::icv(&body);
            let mut trailer_plain = mic.to_vec();
            trailer_plain.extend_from_slice(&icv);

            // Sample captures: for each packet draw a TSC, then draw the trailer
            // keystream bytes from the model's class distribution and XOR.
            let mut stats = TrailerStatistics::new(256, config.payload_len)?;
            for i in 0..captures {
                if i % 4096 == 0 {
                    ctx.checkpoint()?;
                }
                let tsc = Tsc(i + 1);
                let class = model.class_of(tsc);
                let mut ct = vec![0u8; config.payload_len + wpa_tkip::mpdu::TRAILER_LEN];
                for (idx, slot) in ct
                    .iter_mut()
                    .enumerate()
                    .skip(config.payload_len)
                    .take(wpa_tkip::mpdu::TRAILER_LEN)
                {
                    let pos = idx + 1;
                    let dist = model.distribution(class, pos);
                    let z = sample_index(dist, &mut rng) as u8;
                    *slot = trailer_plain[idx - config.payload_len] ^ z;
                }
                stats.add(class, &ct)?;
            }

            let likelihoods = stats.likelihoods(&model)?;
            let candidates =
                generate_candidates(&likelihoods, config.max_candidates, &Charset::full())?;
            let outcome = find_consistent_candidate(&candidates, &payload)
                .map(|(index, trailer)| (index, trailer[..] == trailer_plain[..]));
            reporter.tick(1);
            Ok::<_, ExperimentError>(outcome)
        })
        .map_err(ExperimentError::from)?;
    drop(trials_span);

    let mut points = Vec::with_capacity(config.capture_counts.len());
    for (point, &captures) in config.capture_counts.iter().enumerate() {
        let mut success_full = 0usize;
        let mut success_top2 = 0usize;
        let mut positions: Vec<usize> = Vec::new();
        for (index, is_true_trailer) in outcomes[point * trials..(point + 1) * trials]
            .iter()
            .flatten()
        {
            positions.push(*index);
            if *is_true_trailer {
                success_full += 1;
                if *index < 2 {
                    success_top2 += 1;
                }
            }
        }
        positions.sort_unstable();
        let median = if positions.is_empty() {
            None
        } else {
            Some(positions[positions.len() / 2])
        };
        points.push(Fig8Point {
            captures,
            success_full_list: success_full as f64 / trials as f64,
            success_top2: success_top2 as f64 / trials as f64,
            median_position: median,
        });
    }

    let mut report = ExperimentReport::new(
        "fig8_fig9",
        "TKIP MIC-key recovery success rate and median ICV-candidate position",
        &[
            "captures",
            "success (candidate list)",
            "success (2 candidates)",
            "median position (fig 9)",
        ],
    );
    report.note(format!(
        "{} trials per point, candidate budget {} (paper: 256 trials, ~2^30 candidates)",
        config.trials, config.max_candidates
    ));
    match config.model {
        TkipTrafficModel::Synthetic { relative_bias } => report.note(format!(
            "synthetic per-TSC1 keystream model, relative bias {relative_bias} (see DESIGN.md substitution #2)"
        )),
        TkipTrafficModel::Empirical { keys } => report.note(format!(
            "empirical per-TSC1 keystream model from {keys} TKIP-structured keys"
        )),
    }
    for p in &points {
        report.push_row(&[
            p.captures.to_string(),
            format_percent(p.success_full_list),
            format_percent(p.success_top2),
            p.median_position
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    Ok((points, report))
}

/// [`Experiment`] carrier for the Fig. 8 / Fig. 9 TKIP MIC-key recovery
/// simulation (the report covers both figures, so the registry also exposes
/// this experiment under the `fig9` alias).
pub struct Fig8Experiment {
    config: Fig8Config,
}

impl Fig8Experiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: Fig8Config::for_scale(Scale::Laptop),
        }
    }
}

impl Default for Fig8Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn summary(&self) -> &'static str {
        "TKIP MIC-key recovery success rate and candidate position (Fig. 8/9)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = Fig8Config::for_scale(scale);
    }

    fn config_value(&self) -> Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started { experiment: "fig8" });
        let (_points, report) = run_with_context(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished { experiment: "fig8" });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let bad = Fig8Config {
            capture_counts: vec![],
            ..Fig8Config::quick()
        };
        assert!(run(&bad).is_err());
    }

    #[test]
    fn traffic_model_and_config_serde_roundtrip() {
        for model in [
            TkipTrafficModel::Synthetic {
                relative_bias: 0.25,
            },
            TkipTrafficModel::Empirical { keys: 1 << 20 },
        ] {
            let json = serde_json::to_string(&model).unwrap();
            let back: TkipTrafficModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model);
        }
        assert!(serde_json::from_str::<TkipTrafficModel>("{\"kind\":\"psychic\"}").is_err());

        let config = Fig8Config::for_scale(Scale::Extended);
        let json = serde_json::to_string(&config).unwrap();
        let back: Fig8Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn trait_run_matches_free_function_and_cancels() {
        let config = Fig8Config {
            capture_counts: vec![1 << 9],
            trials: 2,
            max_candidates: 256,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.9 },
            ..Fig8Config::quick()
        };
        let mut exp = Fig8Experiment::new();
        exp.set_config_value(&config_to_value(&config)).unwrap();
        let via_trait = exp.run(&ExperimentContext::default()).unwrap();
        let (_, direct) = run(&config).unwrap();
        assert_eq!(via_trait, direct);

        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }

    #[test]
    fn empirical_model_cached_run_is_byte_identical_to_fresh() {
        let config = Fig8Config {
            capture_counts: vec![1 << 8],
            trials: 1,
            max_candidates: 64,
            model: TkipTrafficModel::Empirical { keys: 2_000 },
            ..Fig8Config::quick()
        };
        let (fresh_points, fresh) = run(&config).unwrap();
        assert_eq!(fresh_points.len(), 1);

        let dir = std::env::temp_dir().join(format!("fig8-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = ExperimentContext::default().with_cache_dir(&dir).unwrap();
        let (_, miss) = run_with_context(&config, &ctx).unwrap();
        let (_, hit) = run_with_context(&config, &ctx).unwrap();
        assert_eq!(miss, fresh, "cache-miss run must match the uncached run");
        assert_eq!(hit, fresh, "cache-hit run must match the uncached run");
        // Exactly one per-TSC dataset landed in the cache.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries.len(), 1, "cache dir: {entries:?}");
        assert!(entries[0].starts_with("per-tsc-"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn success_improves_with_captures_and_candidate_list_beats_top2() {
        let config = Fig8Config {
            capture_counts: vec![1 << 9, 1 << 13],
            trials: 6,
            max_candidates: 1 << 10,
            model: TkipTrafficModel::Synthetic { relative_bias: 0.9 },
            payload_len: 55,
            seed: 42,
        };
        let (points, report) = run(&config).unwrap();
        assert_eq!(points.len(), 2);
        // More captures must not reduce the success rate (monotone in expectation;
        // with few trials allow equality).
        assert!(points[1].success_full_list >= points[0].success_full_list);
        // The full candidate list can only do at least as well as the top-2 rule.
        for p in &points {
            assert!(p.success_full_list >= p.success_top2);
        }
        // At the larger capture count with a strong synthetic bias the attack succeeds.
        assert!(
            points[1].success_full_list > 0.5,
            "full-list success too low: {:?}\n{}",
            points[1],
            report.render()
        );
    }
}
