//! Section-3 bias-hunting experiments: Tables 1–2, Figures 4–6, Eq. 3–5 and
//! the long-term biases of Sect. 3.4.
//!
//! Each driver generates keystream statistics at a configurable scale (the
//! paper used `2^44`–`2^47` keys; laptop-scale runs use far fewer, which
//! mainly widens the confidence intervals of the weaker biases), runs the
//! hypothesis-test pipeline, and reports measured probabilities next to the
//! paper's values.

use rc4_biases::{
    fm::{fm_biases_at, FmDigraph},
    keylength,
    longterm::aligned_biases,
    shortterm::{equality_biases, table2_consecutive, table2_nonconsecutive},
    z1z2::Z1Z2Family,
    UNIFORM_PAIR, UNIFORM_SINGLE,
};
use rc4_stats::{
    longterm::LongTermDataset, pairs::PairDataset, single::SingleByteDataset,
    worker::generate_with_exec, GenerationConfig, KeystreamCollector,
};
use serde::{Deserialize, Serialize};
use stat_tests::{
    chisq::chi_squared_uniform, mtest::m_test_independence, proportion::proportion_test,
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::Scale,
    report::{format_percent, format_pow2, ExperimentReport},
    ExperimentError,
};

/// Scale configuration for the bias-hunting experiments.
#[derive(Debug, Clone, Copy)]
pub struct BiasScale {
    /// Number of random keys for the pair/single-byte datasets.
    ///
    /// Paper scale: `2^44`–`2^47`. Laptop default: `2^21`.
    pub keys: u64,
    /// Number of keys for the long-term dataset (each contributes `block_len` digraphs).
    pub longterm_keys: u64,
    /// Keystream bytes consumed per key in the long-term dataset (after the 1023-byte drop).
    pub longterm_block: usize,
    /// Worker threads.
    pub workers: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for BiasScale {
    fn default() -> Self {
        Self {
            keys: 1 << 22,
            longterm_keys: 1 << 10,
            longterm_block: 1 << 21,
            workers: 1,
            seed: 0xB1A5,
        }
    }
}

impl BiasScale {
    /// A seconds-long configuration for tests and CI.
    pub fn quick() -> Self {
        Self {
            keys: 1 << 16,
            longterm_keys: 1 << 6,
            longterm_block: 1 << 18,
            ..Self::default()
        }
    }

    /// The preset for a [`Scale`]: `Quick` for CI, `Laptop` (the default) for
    /// readable curves, `Extended` approaching paper parameters.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self::quick(),
            Scale::Laptop => Self::default(),
            Scale::Extended => Self {
                keys: 1 << 26,
                longterm_keys: 1 << 12,
                longterm_block: 1 << 22,
                ..Self::default()
            },
        }
    }
}

/// Serde-roundtrippable configuration shared by all eight bias experiments.
///
/// `workers` is intentionally absent: parallelism comes from the
/// [`ExperimentContext`]. `seed` is the experiment's *base* seed (each driver
/// XORs its own tweak internally, as before); the context seed is mixed on
/// top, so the default context reproduces the historical outputs exactly.
/// `positions` is consumed only by `fig4` (digraph positions) and `fig5`
/// (late keystream positions) and ignored by the other experiments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiasConfig {
    /// Number of random keys for the pair/single-byte datasets.
    pub keys: u64,
    /// Number of keys for the long-term dataset.
    pub longterm_keys: u64,
    /// Keystream bytes consumed per key in the long-term dataset.
    pub longterm_block: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Keystream positions swept by `fig4`/`fig5`; ignored elsewhere.
    pub positions: Vec<u64>,
}

impl BiasConfig {
    /// The preset for `scale`, with the given position sweep.
    pub fn for_scale(scale: Scale, positions: &[u64]) -> Self {
        let preset = BiasScale::for_scale(scale);
        Self {
            keys: preset.keys,
            longterm_keys: preset.longterm_keys,
            longterm_block: preset.longterm_block,
            seed: preset.seed,
            positions: positions.to_vec(),
        }
    }

    /// The effective [`BiasScale`] under `ctx`.
    ///
    /// `workers` stays at the single-stream default: the stream count
    /// partitions the deterministic key space and is therefore part of the
    /// measured dataset's identity. Threads come from the context's executor
    /// instead, so `--workers` changes wall-clock time but never a measured
    /// probability (worker-count invariance).
    fn scale(&self, ctx: &ExperimentContext) -> BiasScale {
        BiasScale {
            keys: self.keys,
            longterm_keys: self.longterm_keys,
            longterm_block: self.longterm_block,
            workers: 1,
            seed: ctx.mix_seed(self.seed),
        }
    }
}

/// Uniform runner signature shared by the eight bias experiments.
type BiasRunner =
    fn(&BiasScale, &[u64], &ExperimentContext) -> Result<ExperimentReport, ExperimentError>;

/// [`Experiment`] carrier for the Section-3 bias experiments: one struct,
/// eight constructors, each pairing a runner with its default position sweep.
pub struct BiasExperiment {
    name: &'static str,
    summary: &'static str,
    default_positions: &'static [u64],
    runner: BiasRunner,
    config: BiasConfig,
}

impl BiasExperiment {
    fn new(
        name: &'static str,
        summary: &'static str,
        default_positions: &'static [u64],
        runner: BiasRunner,
    ) -> Self {
        Self {
            name,
            summary,
            default_positions,
            runner,
            config: BiasConfig::for_scale(Scale::Laptop, default_positions),
        }
    }

    /// Table 1 — generalized Fluhrer–McGrew long-term digraph biases.
    pub fn table1() -> Self {
        Self::new(
            "table1",
            "Generalized Fluhrer-McGrew digraph biases in the long-term keystream",
            &[],
            |s, _, ctx| table1_fm_longterm_ctx(s, ctx),
        )
    }

    /// Fig. 4 — FM digraph biases in the initial keystream bytes.
    pub fn fig4() -> Self {
        Self::new(
            "fig4",
            "Fluhrer-McGrew digraph relative biases in the initial keystream",
            &[1, 2, 5, 17, 32, 64, 96, 130, 192, 257, 288],
            |s, p, ctx| {
                let positions: Vec<usize> = p.iter().map(|&v| v as usize).collect();
                fig4_fm_shortterm_ctx(s, &positions, ctx)
            },
        )
    }

    /// Table 2 — new biases between (non-)consecutive initial bytes.
    pub fn table2() -> Self {
        Self::new(
            "table2",
            "New biases between (non-)consecutive initial keystream bytes",
            &[],
            |s, _, ctx| table2_new_biases_ctx(s, ctx),
        )
    }

    /// Eq. 3–5 — equality biases among the first four keystream bytes.
    pub fn eq345() -> Self {
        Self::new(
            "eq345",
            "Equality biases among the first four keystream bytes (Eq. 3-5)",
            &[],
            |s, _, ctx| eq345_equalities_ctx(s, ctx),
        )
    }

    /// Fig. 5 — influence of `Z_1`/`Z_2` on later keystream bytes.
    pub fn fig5() -> Self {
        Self::new(
            "fig5",
            "Influence of Z1 and Z2 on later keystream bytes",
            &[4, 8, 16, 32, 64, 128, 192, 256],
            |s, p, ctx| {
                let positions: Vec<u16> = p
                    .iter()
                    .map(|&v| {
                        u16::try_from(v).map_err(|_| {
                            ExperimentError::InvalidConfig(format!(
                                "fig5 position {v} exceeds the u16 keystream-position range"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                fig5_z1z2_ctx(s, &positions, ctx)
            },
        )
    }

    /// Fig. 6 — single-byte biases beyond position 256.
    pub fn fig6() -> Self {
        Self::new(
            "fig6",
            "Single-byte biases beyond position 256 (key-length harmonics)",
            &[],
            |s, _, ctx| fig6_single_byte_ctx(s, ctx),
        )
    }

    /// Sect. 3.4 — long-term biases at 256-aligned positions.
    pub fn longterm() -> Self {
        Self::new(
            "longterm",
            "Long-term biases at 256-aligned positions (Sect. 3.4)",
            &[],
            |s, _, ctx| longterm_aligned_ctx(s, ctx),
        )
    }

    /// Headline short-term bias re-detection summary.
    pub fn headline() -> Self {
        Self::new(
            "headline",
            "Headline short-term biases re-detected by the hypothesis tests",
            &[],
            |s, _, ctx| headline_detection_ctx(s, ctx),
        )
    }
}

impl Experiment for BiasExperiment {
    fn name(&self) -> &'static str {
        self.name
    }

    fn summary(&self) -> &'static str {
        self.summary
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = BiasConfig::for_scale(scale, self.default_positions);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name, value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: self.name,
        });
        let scale = self.config.scale(ctx);
        let report = (self.runner)(&scale, &self.config.positions, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: self.name,
        });
        Ok(report)
    }
}

/// Table 1: verifies the generalized Fluhrer–McGrew digraph biases in the
/// long-term keystream and reports measured vs table probabilities.
///
/// # Errors
///
/// Propagates dataset-generation and test errors.
pub fn table1_fm_longterm(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    table1_fm_longterm_ctx(scale, &ExperimentContext::default())
}

fn table1_fm_longterm_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.longterm_keys,
        workers: scale.workers,
        seed: scale.seed,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(
        LongTermDataset::paper_shape(scale.longterm_block)?,
        &config,
        |ds| {
            generate_with_exec(ds, &config, &ctx.executor())?;
            Ok(())
        },
    )?;

    let mut report = ExperimentReport::new(
        "table1",
        "Generalized Fluhrer-McGrew biases (long-term keystream)",
        &[
            "digraph",
            "i condition",
            "paper prob",
            "measured prob",
            "rel. bias sign ok",
        ],
    );
    report.note(format!(
        "{} keys x {} bytes after a 1023-byte drop (paper: 2^12 keys x 2^40 bytes)",
        scale.longterm_keys, scale.longterm_block
    ));

    // Evaluate each digraph family at a representative PRGA counter value.
    let representatives: &[(FmDigraph, u8, &str)] = &[
        (FmDigraph::ZeroZeroAtOne, 1, "i = 1"),
        (FmDigraph::ZeroZero, 7, "i != 1,255"),
        (FmDigraph::ZeroOne, 7, "i != 0,1"),
        (FmDigraph::ZeroIPlusOne, 7, "i != 0,255"),
        (FmDigraph::IPlusOne255, 7, "i != 254"),
        (FmDigraph::OneTwoNine, 2, "i = 2"),
        (FmDigraph::TwoFiftyFiveIPlusOne, 7, "i != 1,254"),
        (FmDigraph::TwoFiftyFiveIPlusTwo, 7, "i in [1,252]"),
        (FmDigraph::TwoFiftyFiveZero, 254, "i = 254"),
        (FmDigraph::TwoFiftyFiveOne, 255, "i = 255"),
        (FmDigraph::TwoFiftyFiveTwo, 0, "i = 0,1"),
        (FmDigraph::TwoFiftyFive255, 7, "i != 254"),
    ];
    for &(digraph, i, condition) in representatives {
        let Some((x, y)) = digraph.pair_at(i) else {
            continue;
        };
        let samples = ds.digraph_samples(i);
        let measured = ds.digraph_probability(i, x, y);
        let paper = digraph.probability();
        let sign_ok = if samples == 0 {
            false
        } else {
            (measured > UNIFORM_PAIR) == (paper > UNIFORM_PAIR)
        };
        report.push_row(&[
            format!("({x},{y})"),
            condition.to_string(),
            format_pow2(paper),
            format_pow2(measured),
            sign_ok.to_string(),
        ]);
    }
    Ok(report)
}

/// Fig. 4: the relative bias of Fluhrer–McGrew digraphs in the *initial*
/// keystream bytes, compared to the single-byte based expectation.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn fig4_fm_shortterm(
    scale: &BiasScale,
    positions: &[usize],
) -> Result<ExperimentReport, ExperimentError> {
    fig4_fm_shortterm_ctx(scale, positions, &ExperimentContext::default())
}

fn fig4_fm_shortterm_ctx(
    scale: &BiasScale,
    positions: &[usize],
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let max_pos = positions.iter().copied().max().unwrap_or(1).max(2);
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 4,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(PairDataset::consecutive(max_pos)?, &config, |ds| {
        generate_with_exec(ds, &config, &ctx.executor())?;
        Ok(())
    })?;

    let mut report = ExperimentReport::new(
        "fig4",
        "Fluhrer-McGrew digraph relative biases in the initial keystream",
        &[
            "position",
            "digraph",
            "|q| measured",
            "sign (paper)",
            "dependence p-value",
        ],
    );
    report.note(format!("{} keys (paper: 2^45)", scale.keys));
    for &r in positions {
        let Some(idx) = ds.pair_index(r, r + 1) else {
            continue;
        };
        let m = m_test_independence(ds.joint_counts(idx), 256, 256)?;
        for bias in fm_biases_at(r as u64) {
            let q = ds
                .relative_bias(idx, bias.first, bias.second)
                .unwrap_or(0.0);
            report.push_row(&[
                r.to_string(),
                format!("({},{})", bias.first, bias.second),
                format!("{:.6}", q.abs()),
                format!("{:?}", bias.sign),
                format!("{:.2e}", m.test.p_value),
            ]);
        }
    }
    Ok(report)
}

/// Table 2: the new consecutive (key-length) and non-consecutive biases.
///
/// Only the consecutive rows are re-measured here — the non-consecutive rows
/// need the full `first16` dataset, which is exercised by [`fig5_z1z2`] on the
/// same machinery; their paper values are still listed for reference.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn table2_new_biases(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    table2_new_biases_ctx(scale, &ExperimentContext::default())
}

fn table2_new_biases_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 2,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(PairDataset::consecutive(112)?, &config, |ds| {
        generate_with_exec(ds, &config, &ctx.executor())?;
        Ok(())
    })?;

    let mut report = ExperimentReport::new(
        "table2",
        "New biases between (non-)consecutive initial bytes",
        &[
            "bytes",
            "paper prob",
            "measured prob",
            "rejects independence",
        ],
    );
    report.note(format!("{} keys (paper: 2^44/2^45)", scale.keys));

    for row in table2_consecutive() {
        let idx = ds
            .pair_index(row.pos_a as usize, row.pos_b as usize)
            .expect("consecutive dataset covers positions up to 112");
        let measured = ds.joint_probability(idx, row.val_a, row.val_b);
        let n = ds.keystreams();
        let count = ds.count(idx, row.val_a, row.val_b);
        let test = proportion_test(count, n, UNIFORM_PAIR)?;
        report.push_row(&[
            format!(
                "Z{}={} & Z{}={}",
                row.pos_a, row.val_a, row.pos_b, row.val_b
            ),
            format_pow2(row.paper_probability),
            format_pow2(measured),
            test.test.rejects_at(1e-2).to_string(),
        ]);
    }
    for row in table2_nonconsecutive() {
        report.push_row(&[
            format!(
                "Z{}={} & Z{}={}",
                row.pos_a, row.val_a, row.pos_b, row.val_b
            ),
            format_pow2(row.paper_probability),
            "(first16 dataset required)".to_string(),
            "-".to_string(),
        ]);
    }
    Ok(report)
}

/// Eq. 3–5: the `Z_1 = Z_3`, `Z_1 = Z_4` and `Z_2 = Z_4` equality biases.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn eq345_equalities(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    eq345_equalities_ctx(scale, &ExperimentContext::default())
}

fn eq345_equalities_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 345,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(
        PairDataset::new(vec![
            rc4_stats::pairs::PositionPair { a: 1, b: 3 },
            rc4_stats::pairs::PositionPair { a: 1, b: 4 },
            rc4_stats::pairs::PositionPair { a: 2, b: 4 },
        ])?,
        &config,
        |ds| {
            generate_with_exec(ds, &config, &ctx.executor())?;
            Ok(())
        },
    )?;

    let mut report = ExperimentReport::new(
        "eq345",
        "Equality biases among the first four keystream bytes (Eq. 3-5)",
        &["equality", "paper prob", "measured prob", "measured sign"],
    );
    report.note(format!("{} keys (paper: 2^44)", scale.keys));
    for bias in equality_biases() {
        let idx = ds
            .pair_index(bias.pos_a as usize, bias.pos_b as usize)
            .expect("dataset covers the three pairs");
        // Pr[Z_a = Z_b] = sum over x of the diagonal.
        let mut count = 0u64;
        for x in 0..=255u8 {
            count += ds.count(idx, x, x);
        }
        let measured = count as f64 / ds.keystreams() as f64;
        let sign = if measured >= UNIFORM_SINGLE {
            "positive"
        } else {
            "negative"
        };
        report.push_row(&[
            format!("Z{} = Z{}", bias.pos_a, bias.pos_b),
            format_pow2(bias.paper_probability),
            format_pow2(measured),
            sign.to_string(),
        ]);
    }
    Ok(report)
}

/// Fig. 5: the influence of `Z_1` and `Z_2` on later keystream bytes — measures
/// the absolute relative bias of each family at a sample of positions.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn fig5_z1z2(
    scale: &BiasScale,
    positions: &[u16],
) -> Result<ExperimentReport, ExperimentError> {
    fig5_z1z2_ctx(scale, positions, &ExperimentContext::default())
}

fn fig5_z1z2_ctx(
    scale: &BiasScale,
    positions: &[u16],
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let max_pos = positions.iter().copied().max().unwrap_or(16).max(3) as usize;
    // first16-style dataset restricted to the pairs (1, i) and (2, i).
    let mut pairs = Vec::new();
    for &i in positions {
        pairs.push(rc4_stats::pairs::PositionPair {
            a: 1,
            b: i as usize,
        });
        pairs.push(rc4_stats::pairs::PositionPair {
            a: 2,
            b: i as usize,
        });
    }
    let _ = max_pos;
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 5,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(PairDataset::new(pairs)?, &config, |ds| {
        generate_with_exec(ds, &config, &ctx.executor())?;
        Ok(())
    })?;

    let mut report = ExperimentReport::new(
        "fig5",
        "Influence of Z1 and Z2 on later keystream bytes",
        &[
            "family",
            "position i",
            "|q| measured",
            "sign measured",
            "sign paper",
        ],
    );
    report.note(format!("{} keys (paper: 2^44 first16 dataset)", scale.keys));
    for family in Z1Z2Family::ALL {
        for &i in positions {
            let Some(event) = family.event(i) else {
                continue;
            };
            let Some(idx) = ds.pair_index(event.early_pos as usize, event.late_pos as usize) else {
                continue;
            };
            let Some(q) = ds.relative_bias(idx, event.early_val, event.late_val) else {
                continue;
            };
            let sign = if q >= 0.0 { "positive" } else { "negative" };
            report.push_row(&[
                format!("{}", family.number()),
                i.to_string(),
                format!("{:.6}", q.abs()),
                sign.to_string(),
                format!("{:?}", family.typical_sign()).to_lowercase(),
            ]);
        }
    }
    Ok(report)
}

/// Fig. 6: single-byte biases beyond position 256 (`Z_{256+16k} → 32k`) plus
/// the per-position uniformity test of the initial bytes.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn fig6_single_byte(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    fig6_single_byte_ctx(scale, &ExperimentContext::default())
}

fn fig6_single_byte_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 6,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(SingleByteDataset::new(384), &config, |ds| {
        generate_with_exec(ds, &config, &ctx.executor())?;
        Ok(())
    })?;

    let mut report = ExperimentReport::new(
        "fig6",
        "Single-byte biases beyond position 256 (key-length harmonics)",
        &[
            "position",
            "favoured value",
            "measured prob",
            "uniform",
            "uniformity p-value",
        ],
    );
    report.note(format!("{} keys (paper: 2^47)", scale.keys));
    for bias in keylength::beyond_256_biases() {
        if bias.position as usize > ds.positions() {
            continue;
        }
        let measured = ds.probability(bias.position as usize, bias.value);
        let test = chi_squared_uniform(ds.counts_at(bias.position as usize))?;
        report.push_row(&[
            bias.position.to_string(),
            bias.value.to_string(),
            format_pow2(measured),
            format_pow2(UNIFORM_SINGLE),
            format!("{:.2e}", test.p_value),
        ]);
    }
    // Also report the two headline short-term single-byte biases as context rows.
    let z2 = ds.probability(2, 0);
    report.push_row(&[
        "2".to_string(),
        "0 (Mantin-Shamir)".to_string(),
        format_pow2(z2),
        format_pow2(UNIFORM_SINGLE),
        format!("{:.2e}", chi_squared_uniform(ds.counts_at(2))?.p_value),
    ]);
    let z16 = ds.probability(16, 240);
    report.push_row(&[
        "16".to_string(),
        "240 (key length)".to_string(),
        format_pow2(z16),
        format_pow2(UNIFORM_SINGLE),
        format!("{:.2e}", chi_squared_uniform(ds.counts_at(16))?.p_value),
    ]);
    Ok(report)
}

/// Sect. 3.4: long-term biases at 256-aligned positions — Sen Gupta's `(0,0)`
/// and the paper's new `(128,0)`.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn longterm_aligned(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    longterm_aligned_ctx(scale, &ExperimentContext::default())
}

fn longterm_aligned_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.longterm_keys,
        workers: scale.workers,
        seed: scale.seed ^ 8,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(
        LongTermDataset::new(255, scale.longterm_block)?,
        &config,
        |ds| {
            generate_with_exec(ds, &config, &ctx.executor())?;
            Ok(())
        },
    )?;

    let mut report = ExperimentReport::new(
        "longterm",
        "Long-term biases at 256-aligned positions (Sect. 3.4)",
        &["pair", "paper prob", "measured prob", "samples"],
    );
    report.note(format!(
        "{} keys x {} bytes (paper: 2^12 keys x 2^40 bytes)",
        scale.longterm_keys, scale.longterm_block
    ));
    for bias in aligned_biases() {
        let measured = ds.aligned_probability(bias.first, bias.second);
        report.push_row(&[
            format!("({},{})", bias.first, bias.second),
            format_pow2(bias.probability),
            format_pow2(measured),
            ds.aligned_samples().to_string(),
        ]);
    }
    Ok(report)
}

/// Summarizes how many of the strong headline biases were re-detected, a
/// convenience used by integration tests and the quickstart example.
///
/// # Errors
///
/// Propagates dataset-generation errors.
pub fn headline_detection(scale: &BiasScale) -> Result<ExperimentReport, ExperimentError> {
    headline_detection_ctx(scale, &ExperimentContext::default())
}

fn headline_detection_ctx(
    scale: &BiasScale,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let config = GenerationConfig {
        keys: scale.keys,
        workers: scale.workers,
        seed: scale.seed ^ 99,
        key_len: 16,
    };
    let ds = ctx.load_or_generate(SingleByteDataset::new(16), &config, |ds| {
        generate_with_exec(ds, &config, &ctx.executor())?;
        Ok(())
    })?;
    let mut report = ExperimentReport::new(
        "headline",
        "Headline short-term biases re-detected by the hypothesis tests",
        &["bias", "measured prob", "detected"],
    );
    // Mantin-Shamir Z2 = 0.
    let z2_test = proportion_test(ds.count(2, 0), ds.keystreams(), UNIFORM_SINGLE)?;
    report.push_row(&[
        "Pr[Z2 = 0] ~ 2^-7".to_string(),
        format_pow2(ds.probability(2, 0)),
        format_percent(if z2_test.test.rejects() { 1.0 } else { 0.0 }),
    ]);
    // Key-length bias Z16 = 240.
    let z16_test = proportion_test(ds.count(16, 240), ds.keystreams(), UNIFORM_SINGLE)?;
    report.push_row(&[
        "Pr[Z16 = 240] > 2^-8".to_string(),
        format_pow2(ds.probability(16, 240)),
        format_percent(if z16_test.test.rejects() { 1.0 } else { 0.0 }),
    ]);
    // Uniformity rejected for every initial byte.
    let mut rejected = 0usize;
    for r in 1..=16 {
        if chi_squared_uniform(ds.counts_at(r))?.rejects_at(1e-3) {
            rejected += 1;
        }
    }
    report.push_row(&[
        "initial bytes with uniformity rejected (of 16)".to_string(),
        rejected.to_string(),
        format_percent(rejected as f64 / 16.0),
    ]);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BiasScale {
        BiasScale {
            keys: 1 << 13,
            longterm_keys: 4,
            longterm_block: 4096,
            workers: 1,
            seed: 7,
        }
    }

    #[test]
    fn table1_report_shape() {
        let r = table1_fm_longterm(&tiny()).unwrap();
        assert_eq!(r.id, "table1");
        assert_eq!(r.rows.len(), 12);
        assert!(r.render().contains("(0,0)"));
    }

    #[test]
    fn fig4_report_runs_at_tiny_scale() {
        let r = fig4_fm_shortterm(&tiny(), &[4, 17]).unwrap();
        assert!(!r.rows.is_empty());
        assert!(r.columns.contains(&"|q| measured".to_string()));
    }

    #[test]
    fn table2_and_eq345_reports() {
        let r = table2_new_biases(&tiny()).unwrap();
        assert_eq!(r.rows.len(), 7 + 16);
        let e = eq345_equalities(&tiny()).unwrap();
        assert_eq!(e.rows.len(), 3);
    }

    #[test]
    fn fig5_fig6_longterm_reports() {
        let r = fig5_z1z2(&tiny(), &[4, 16]).unwrap();
        assert!(!r.rows.is_empty());
        let f6 = fig6_single_byte(&tiny()).unwrap();
        assert!(f6.rows.len() >= 9);
        let lt = longterm_aligned(&tiny()).unwrap();
        assert_eq!(lt.rows.len(), 2);
    }

    #[test]
    fn bias_experiment_trait_matches_free_function_and_roundtrips() {
        // The trait path with a default context must reproduce the free
        // function bit for bit (the numerical-identity guarantee of the
        // experiment-API redesign).
        let mut exp = BiasExperiment::headline();
        exp.apply_scale(Scale::Quick);
        exp.set_config_value(&config_to_value(&BiasConfig {
            keys: 1 << 13,
            longterm_keys: 4,
            longterm_block: 4096,
            seed: 7,
            positions: vec![],
        }))
        .unwrap();
        let via_trait = exp.run(&ExperimentContext::default()).unwrap();
        let direct = headline_detection(&tiny()).unwrap();
        assert_eq!(via_trait, direct);

        // Config roundtrip through JSON is lossless.
        let json = exp.config_json();
        let mut other = BiasExperiment::headline();
        other.set_config_json(&json).unwrap();
        assert_eq!(other.config_value(), exp.config_value());

        // A non-zero context seed changes the measured numbers.
        let reseeded = exp.run(&ExperimentContext::default().with_seed(1)).unwrap();
        assert_ne!(reseeded, direct);
    }

    #[test]
    fn fig5_rejects_positions_beyond_u16() {
        let mut exp = BiasExperiment::fig5();
        exp.set_config_value(&config_to_value(&BiasConfig {
            positions: vec![65600],
            ..BiasConfig::for_scale(Scale::Quick, &[])
        }))
        .unwrap();
        match exp.run(&ExperimentContext::default()) {
            Err(ExperimentError::InvalidConfig(msg)) => assert!(msg.contains("65600")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|r| r.id)),
        }
    }

    #[test]
    fn bias_experiment_cancellation_aborts_generation() {
        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        let mut exp = BiasExperiment::table1();
        exp.apply_scale(Scale::Quick);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }

    #[test]
    fn cached_bias_run_is_byte_identical_and_skips_generation() {
        let dir = std::env::temp_dir().join(format!("biases-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = headline_detection(&tiny()).unwrap();
        let ctx = ExperimentContext::default().with_cache_dir(&dir).unwrap();
        let miss = headline_detection_ctx(&tiny(), &ctx).unwrap();
        let hit = headline_detection_ctx(&tiny(), &ctx).unwrap();
        assert_eq!(miss, fresh);
        assert_eq!(hit, fresh);
        // eq345 uses a different seed tweak and shape: a separate cache entry,
        // no false sharing.
        let eq_fresh = eq345_equalities(&tiny()).unwrap();
        let eq_cached = eq345_equalities_ctx(&tiny(), &ctx).unwrap();
        assert_eq!(eq_cached, eq_fresh);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn headline_biases_detected_at_modest_scale() {
        // 2^17 keys are enough to detect the Mantin-Shamir bias (100% relative);
        // the Z16 -> 240 bias (~2^-4.8 relative) needs millions of keys and is
        // only asserted to be *reported*, with its detection left to the
        // release-mode repro harness.
        let scale = BiasScale {
            keys: 1 << 17,
            ..tiny()
        };
        let r = headline_detection(&scale).unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(
            r.rows[0].cells[2],
            "100.0%",
            "Z2=0 not detected: {}",
            r.render()
        );
        assert!(r.rows[1].cells[0].contains("Z16"));
    }
}
