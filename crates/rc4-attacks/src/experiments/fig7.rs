//! Fig. 7: average success rate of decrypting two plaintext bytes with
//! (1) a single ABSAB relation, (2) the Fluhrer–McGrew biases, and (3) the
//! combination of FM with many ABSAB relations.
//!
//! The paper runs 2048 simulations per point over ciphertext counts from
//! `2^27` to `2^39`. This driver reproduces the simulation in *sampled mode*:
//! the per-pair ciphertext counts and per-relation differential counts are
//! drawn from the exact distributions the analysis assumes (normal
//! approximation per cell), which makes paper-scale ciphertext counts
//! affordable. The qualitative result — combined ≫ FM-only ≫ single ABSAB,
//! with the crossover to near-certain recovery moving left as biases are
//! added — is what the experiment checks.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{DeError, Deserialize, Serialize, Value};

use plaintext_recovery::{absab::combine_pair_likelihoods, likelihood::PairLikelihoods};
use rc4_biases::{absab::alpha, distributions::PairDistribution, UNIFORM_PAIR};
use rc4_stats::{
    pairs::{PairDataset, PositionPair},
    worker::generate_with_exec,
    GenerationConfig,
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::{CountSource, Scale, DATASET_STREAMS},
    report::{format_percent, ExperimentReport},
    sampling::{sample_counts_normal, stream_seed},
    ExperimentError,
};

/// Which bias families a simulated recovery uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// A single ABSAB relation with gap 0.
    AbsabOnly,
    /// The Fluhrer–McGrew biases at the target position.
    FmOnly,
    /// FM combined with `absab_relations` ABSAB relations.
    Combined,
}

impl RecoveryStrategy {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::AbsabOnly => "ABSAB only",
            RecoveryStrategy::FmOnly => "FM only",
            RecoveryStrategy::Combined => "Combined",
        }
    }
}

/// Configuration of the Fig. 7 simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Config {
    /// Ciphertext counts to sweep (the paper sweeps `2^27 ..= 2^39`).
    pub ciphertext_counts: Vec<u64>,
    /// Simulations per point (the paper uses 2048).
    pub trials: usize,
    /// Number of ABSAB relations available in the combined strategy
    /// (the paper uses `2 * 129 = 258` with a maximum gap of 128).
    pub absab_relations: usize,
    /// Keystream position of the unknown pair (determines the FM cells).
    pub position: u64,
    /// Where the ground-truth keystream-pair distribution comes from:
    /// the analytic FM model (default) or measurement over real keystreams.
    pub source: CountSource,
    /// RNG seed.
    pub seed: u64,
}

/// Hand-written so config files from before the `source` field existed keep
/// deserializing (an absent `source` means the historical analytic mode).
impl Deserialize for Fig7Config {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            ciphertext_counts: Vec::<u64>::from_value(v.field("ciphertext_counts")?)?,
            trials: usize::from_value(v.field("trials")?)?,
            absab_relations: usize::from_value(v.field("absab_relations")?)?,
            position: u64::from_value(v.field("position")?)?,
            source: match v.field("source") {
                Ok(source) => CountSource::from_value(source)?,
                Err(_) => CountSource::Analytic,
            },
            seed: u64::from_value(v.field("seed")?)?,
        })
    }
}

impl Default for Fig7Config {
    fn default() -> Self {
        Self {
            ciphertext_counts: vec![1 << 27, 1 << 29, 1 << 31, 1 << 33, 1 << 35, 1 << 37],
            trials: 64,
            absab_relations: 258,
            position: 257,
            source: CountSource::Analytic,
            seed: 0xF167,
        }
    }
}

impl Fig7Config {
    /// A seconds-long configuration for tests.
    pub fn quick() -> Self {
        Self {
            ciphertext_counts: vec![1 << 29, 1 << 35],
            trials: 8,
            absab_relations: 32,
            ..Self::default()
        }
    }

    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self::quick(),
            Scale::Laptop => Self {
                ciphertext_counts: vec![1 << 27, 1 << 29, 1 << 31, 1 << 33, 1 << 35],
                trials: 32,
                absab_relations: 64,
                ..Self::default()
            },
            Scale::Extended => Self {
                ciphertext_counts: vec![
                    1 << 27,
                    1 << 29,
                    1 << 31,
                    1 << 33,
                    1 << 35,
                    1 << 37,
                    1 << 39,
                ],
                trials: 128,
                absab_relations: 258,
                ..Self::default()
            },
        }
    }
}

/// Runs one simulated recovery of a plaintext pair and reports success.
fn simulate_trial(
    strategy: RecoveryStrategy,
    n: u64,
    config: &Fig7Config,
    key_pair_probs: &[f64],
    fm_cells: &[(u8, u8, f64)],
    rng: &mut StdRng,
) -> Result<bool, ExperimentError> {
    let truth: (u8, u8) = (rng.gen(), rng.gen());

    let fm_likelihood = |rng: &mut StdRng| -> Result<PairLikelihoods, ExperimentError> {
        // Ciphertext pair counts: keystream distribution XORed with the plaintext.
        let mut ct_probs = vec![0.0f64; 65536];
        for k1 in 0..256usize {
            for k2 in 0..256usize {
                let c1 = k1 ^ truth.0 as usize;
                let c2 = k2 ^ truth.1 as usize;
                ct_probs[(c1 << 8) | c2] = key_pair_probs[(k1 << 8) | k2];
            }
        }
        let counts = sample_counts_normal(&ct_probs, n, rng);
        let total: u64 = counts.iter().sum();
        Ok(PairLikelihoods::from_counts_sparse(
            &counts,
            fm_cells,
            UNIFORM_PAIR,
            total,
        )?)
    };

    let absab_likelihood =
        |gap: usize, rng: &mut StdRng| -> Result<PairLikelihoods, ExperimentError> {
            // Known plaintext pair for this relation (arbitrary but known).
            let known = ((gap as u8).wrapping_mul(17), (gap as u8).wrapping_add(91));
            let a = alpha(gap);
            // Differential distribution: the true differential with prob alpha,
            // everything else uniform.
            let true_diff = (truth.0 ^ known.0, truth.1 ^ known.1);
            let mut probs = vec![(1.0 - a) / 65535.0; 65536];
            probs[(true_diff.0 as usize) << 8 | true_diff.1 as usize] = a;
            let counts = sample_counts_normal(&probs, n, rng);
            let total: u64 = counts.iter().sum();
            // Same scoring as `plaintext_recovery::absab::absab_pair_likelihoods`, but
            // operating directly on the sampled differential-count table (that function
            // takes a streaming `DifferentialCounts` collector, which would require
            // materializing `n` ciphertexts).
            let ln_alpha = a.ln();
            let ln_rest = ((1.0 - a) / 65535.0).ln();
            let mut log = vec![0.0f64; 65536];
            for mu1 in 0..256usize {
                let d0 = mu1 ^ known.0 as usize;
                for mu2 in 0..256usize {
                    let d1 = mu2 ^ known.1 as usize;
                    let hits = counts[(d0 << 8) | d1] as f64;
                    log[(mu1 << 8) | mu2] = (total as f64 - hits) * ln_rest + hits * ln_alpha;
                }
            }
            Ok(PairLikelihoods::from_log_values(log)?)
        };

    let combined = match strategy {
        RecoveryStrategy::AbsabOnly => absab_likelihood(0, rng)?,
        RecoveryStrategy::FmOnly => fm_likelihood(rng)?,
        RecoveryStrategy::Combined => {
            let mut parts = vec![fm_likelihood(rng)?];
            for rel in 0..config.absab_relations {
                // Gaps cycle 0..=127 on both sides, mirroring the paper's setup.
                let gap = rel % 128;
                parts.push(absab_likelihood(gap, rng)?);
            }
            combine_pair_likelihoods(&parts)?
        }
    };
    Ok(combined.best() == truth)
}

/// Runs the Fig. 7 experiment and reports the success rate per strategy and
/// ciphertext count.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for empty sweeps and propagates
/// component errors.
pub fn run(config: &Fig7Config) -> Result<ExperimentReport, ExperimentError> {
    run_with_context(config, &ExperimentContext::default())
}

/// [`run`] under an explicit [`ExperimentContext`]: the context seed is mixed
/// into `config.seed`, progress is reported per sweep point, and the
/// cancellation flag is honoured between trials.
///
/// # Errors
///
/// Everything [`run`] returns, plus [`ExperimentError::Cancelled`].
pub fn run_with_context(
    config: &Fig7Config,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    if config.ciphertext_counts.is_empty() || config.trials == 0 {
        return Err(ExperimentError::InvalidConfig(
            "need at least one ciphertext count and one trial".into(),
        ));
    }
    // Ground-truth keystream-pair distribution for the target position:
    // analytic FM model, or measured from real keystreams (cache-served).
    let key_pair_probs: Vec<f64> = match config.source {
        CountSource::Analytic => {
            let fm_dist = PairDistribution::fluhrer_mcgrew(config.position);
            let mut probs = vec![0.0f64; 65536];
            for k1 in 0..256usize {
                for k2 in 0..256usize {
                    probs[(k1 << 8) | k2] = fm_dist.prob(k1 as u8, k2 as u8);
                }
            }
            probs
        }
        CountSource::Empirical { keys } => {
            let position = config.position as usize;
            // Fixed stream count (dataset identity), threads from the
            // context executor — see `experiments::DATASET_STREAMS`.
            let gen_config = GenerationConfig {
                keys,
                workers: DATASET_STREAMS,
                seed: ctx.mix_seed(config.seed) ^ 0x7E1,
                key_len: 16,
            };
            let ds = ctx.load_or_generate(
                PairDataset::new(vec![PositionPair {
                    a: position,
                    b: position + 1,
                }])?,
                &gen_config,
                |ds| {
                    generate_with_exec(ds, &gen_config, &ctx.executor())?;
                    Ok(())
                },
            )?;
            ds.joint_distribution(0)
        }
    };
    let fm_cells: Vec<(u8, u8, f64)> = rc4_biases::fm::fm_biases_at(config.position)
        .into_iter()
        .map(|b| (b.first, b.second, b.probability))
        .collect();

    let mut report = ExperimentReport::new(
        "fig7",
        "Success rate of decrypting two bytes (sampled-mode simulation)",
        &["ciphertexts", "ABSAB only", "FM only", "Combined"],
    );
    report.note(format!(
        "{} trials per point, {} ABSAB relations in the combined strategy (paper: 2048 trials, 258 relations)",
        config.trials, config.absab_relations
    ));
    report.note(
        "sampled mode: counts drawn from the analysis distributions (normal approximation)"
            .to_string(),
    );
    if let CountSource::Empirical { keys } = config.source {
        report.note(format!(
            "empirical ground truth: pair distribution at position {} measured from {keys} keystreams",
            config.position
        ));
    }

    // Monte-Carlo grid: every (point, strategy, trial) cell is an
    // independent simulation seeded from its own RNG stream, so the whole
    // grid fans out across the executor and the aggregate rates are
    // byte-identical for any worker count.
    const STRATEGIES: [RecoveryStrategy; 3] = [
        RecoveryStrategy::AbsabOnly,
        RecoveryStrategy::FmOnly,
        RecoveryStrategy::Combined,
    ];
    let base_seed = ctx.mix_seed(config.seed);
    let trials = config.trials;
    let mut grid = Vec::with_capacity(config.ciphertext_counts.len() * STRATEGIES.len() * trials);
    for point in 0..config.ciphertext_counts.len() {
        for strategy in 0..STRATEGIES.len() {
            for trial in 0..trials {
                grid.push((point, strategy, trial));
            }
        }
    }
    let reporter = ctx.progress("fig7", grid.len() as u64, "trial");
    let outcomes: Vec<bool> = ctx
        .executor()
        .map(grid, |_, (point, strategy, trial)| {
            let mut rng = StdRng::seed_from_u64(stream_seed(
                base_seed,
                &[point as u64, strategy as u64, trial as u64],
            ));
            let success = simulate_trial(
                STRATEGIES[strategy],
                config.ciphertext_counts[point],
                config,
                &key_pair_probs,
                &fm_cells,
                &mut rng,
            )?;
            reporter.tick(1);
            Ok::<_, ExperimentError>(success)
        })
        .map_err(ExperimentError::from)?;

    for (point, &n) in config.ciphertext_counts.iter().enumerate() {
        let rate = |strategy: usize| {
            let first = (point * STRATEGIES.len() + strategy) * trials;
            let successes = outcomes[first..first + trials]
                .iter()
                .filter(|&&s| s)
                .count();
            format_percent(successes as f64 / trials as f64)
        };
        report.push_row(&[
            format!("2^{:.1}", (n as f64).log2()),
            rate(0),
            rate(1),
            rate(2),
        ]);
    }
    Ok(report)
}

/// [`Experiment`] carrier for the Fig. 7 two-byte recovery simulation.
pub struct Fig7Experiment {
    config: Fig7Config,
}

impl Fig7Experiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: Fig7Config::for_scale(Scale::Laptop),
        }
    }
}

impl Default for Fig7Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for Fig7Experiment {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn summary(&self) -> &'static str {
        "Success rate of decrypting two bytes: ABSAB vs FM vs combined (Sect. 4.3)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = Fig7Config::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started { experiment: "fig7" });
        let report = run_with_context(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished { experiment: "fig7" });
        Ok(report)
    }
}

/// Extracts the success rates from a Fig. 7 report row for programmatic checks.
pub fn parse_rates(report: &ExperimentReport, row: usize) -> (f64, f64, f64) {
    let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap_or(0.0) / 100.0;
    let cells = &report.rows[row].cells;
    (parse(&cells[1]), parse(&cells[2]), parse(&cells[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let empty = Fig7Config {
            ciphertext_counts: vec![],
            ..Fig7Config::quick()
        };
        assert!(run(&empty).is_err());
    }

    #[test]
    fn quick_run_shows_expected_ordering_at_large_n() {
        // At 2^35 sampled ciphertexts the combined strategy must essentially always
        // succeed and dominate the single-ABSAB strategy; FM-only sits in between
        // or equals combined.
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 35],
            trials: 6,
            absab_relations: 16,
            ..Fig7Config::quick()
        };
        let report = run(&config).unwrap();
        let (absab, fm, combined) = parse_rates(&report, 0);
        assert!(combined >= fm, "combined {combined} < fm {fm}");
        assert!(combined >= absab, "combined {combined} < absab {absab}");
        assert!(combined > 0.8, "combined rate too low: {combined}");
    }

    #[test]
    fn trait_run_matches_free_function_and_cancels() {
        let mut exp = Fig7Experiment::new();
        exp.apply_scale(Scale::Quick);
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 28],
            trials: 2,
            absab_relations: 4,
            ..Fig7Config::quick()
        };
        exp.set_config_value(&config_to_value(&config)).unwrap();
        let via_trait = exp.run(&ExperimentContext::default()).unwrap();
        let direct = run(&config).unwrap();
        assert_eq!(via_trait, direct);
        // Config JSON roundtrip is lossless.
        let json = serde_json::to_string(&config).unwrap();
        let back: Fig7Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // Cancellation aborts between trials.
        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }

    #[test]
    fn config_without_source_field_defaults_to_analytic() {
        // Config files written before the `source` field existed keep working.
        let legacy = r#"{"ciphertext_counts":[1024],"trials":2,"absab_relations":4,"position":257,"seed":9}"#;
        let config: Fig7Config = serde_json::from_str(legacy).unwrap();
        assert_eq!(config.source, CountSource::Analytic);
        assert_eq!(config.trials, 2);
    }

    #[test]
    fn empirical_source_runs_and_is_cache_stable() {
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 33],
            trials: 2,
            absab_relations: 4,
            source: CountSource::Empirical { keys: 1 << 13 },
            ..Fig7Config::quick()
        };
        let fresh = run(&config).unwrap();
        assert!(fresh
            .notes
            .iter()
            .any(|n| n.contains("empirical ground truth")));

        // A cached context must reproduce the uncached run byte for byte:
        // first call populates the cache, second call loads from it.
        let dir = std::env::temp_dir().join(format!("fig7-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = ExperimentContext::default().with_cache_dir(&dir).unwrap();
        let miss = run_with_context(&config, &ctx).unwrap();
        let hit = run_with_context(&config, &ctx).unwrap();
        assert_eq!(miss, fresh);
        assert_eq!(hit, fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_n_gives_low_single_absab_rate() {
        let config = Fig7Config {
            ciphertext_counts: vec![1 << 24],
            trials: 6,
            absab_relations: 8,
            ..Fig7Config::quick()
        };
        let report = run(&config).unwrap();
        let (absab, _fm, _combined) = parse_rates(&report, 0);
        // With only 2^24 ciphertexts a single ABSAB relation almost never recovers
        // the pair (the paper's curve is ~0% until 2^31).
        assert!(absab < 0.5, "single-ABSAB rate implausibly high: {absab}");
    }
}
