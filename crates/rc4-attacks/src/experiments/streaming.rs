//! Streaming ingestion with sequential early stopping (ROADMAP item 4).
//!
//! The fixed-grid experiments (`fig7`, `fig10`, `tls-cookie`) answer "does
//! the attack succeed at `n` ciphertexts" for a sweep of `n`. Production
//! traffic arrives continuously, so the operational question is the
//! converse: **how many ciphertexts did *this* session actually need?**
//!
//! The streaming variants in this module ingest ciphertext copies batch by
//! batch from the same simulated generators the fixed-grid drivers use,
//! accumulate the count tables in place
//! ([`rc4_stats::streaming::StreamingCounts`] /
//! [`rc4_stats::streaming::StreamingVotes`]), re-score the candidate ranking
//! after every batch, and feed the top-candidate likelihood margin over the
//! runner-up into a latching sequential test
//! ([`plaintext_recovery::streaming::SequentialTest`]). The attack stops at
//! the first batch whose margin clears the configured confidence threshold;
//! a stream that never clears it runs to the configured cap and reports
//! "no decision". The headline metric is ciphertexts consumed at stop.
//!
//! Re-scoring the *accumulated* table per batch is statistically faithful
//! and cheap: the log-likelihoods are linear in the counts, sums of the
//! per-batch normal draws are again normal with the right aggregate mean,
//! and the sparse scoring cost is independent of the count magnitudes.
//!
//! Determinism: every trial draws from its own RNG stream
//! (`stream_seed(base, &[trial])`), ingests its batches sequentially within
//! the trial, and the trials fan out across the context's executor — so the
//! full report is byte-identical for any `--workers` count, extending the
//! PR-5 determinism contract to streaming mode.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use plaintext_recovery::{
    charset::Charset,
    likelihood::PairLikelihoods,
    streaming::SequentialTest,
    viterbi::{list_viterbi, ViterbiConfig},
};
use rc4_biases::{absab::alpha, distributions::PairDistribution, fm, UNIFORM_PAIR};
use rc4_stats::streaming::{StreamingCounts, StreamingVotes};
use tls_rc4::{
    attack::{
        brute_force_cookie, candidate_margin, cookie_candidates_with_exec, CookieAttackConfig,
        CookieStatistics,
    },
    http::RequestTemplate,
    record::MAC_LEN,
    traffic::{TrafficConfig, TrafficGenerator},
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::Scale,
    report::ExperimentReport,
    sampling::{sample_counts_normal, sample_standard_normal, stream_seed},
    ExperimentError,
};

/// The early-stopping rule shared by every streaming experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopRule {
    /// Confidence threshold on the top-candidate log-likelihood margin over
    /// the runner-up, in nats. The attack stops at the first batch whose
    /// margin reaches it.
    pub threshold: f64,
    /// Units (ciphertexts, requests, captures) ingested per batch; the
    /// ranking is re-scored after every batch.
    pub batch: u64,
    /// Hard cap on units consumed. Reaching it without a decision ends the
    /// trial with an explicit "no decision" outcome.
    pub cap: u64,
}

impl StopRule {
    /// Validates the rule and builds its sequential test.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidConfig`] for a zero batch, a cap
    /// smaller than one batch, or a non-positive/non-finite threshold.
    pub fn test(&self) -> Result<SequentialTest, ExperimentError> {
        if self.batch == 0 {
            return Err(ExperimentError::InvalidConfig(
                "streaming batch size must be > 0".into(),
            ));
        }
        if self.cap < self.batch {
            return Err(ExperimentError::InvalidConfig(format!(
                "streaming cap ({}) must be at least one batch ({})",
                self.cap, self.batch
            )));
        }
        Ok(SequentialTest::new(self.threshold)?)
    }
}

/// Outcome of one streaming trial.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StreamOutcome {
    /// Units consumed when the trial ended (at the decision, or the cap).
    consumed: u64,
    /// Whether the sequential test decided before the cap.
    decided: bool,
    /// The margin at the decision (or at the cap, for undecided trials).
    margin: f64,
    /// Whether the top-ranked candidate at stop was the true plaintext.
    correct: bool,
}

/// Formats a unit count as `count (2^x)` for the report tables.
fn format_units(n: u64) -> String {
    format!("{} (2^{:.1})", n, (n as f64).log2())
}

/// Renders the shared per-trial outcome row.
fn outcome_row(trial: usize, outcome: &StreamOutcome, correct_label: &str) -> Vec<String> {
    vec![
        trial.to_string(),
        format_units(outcome.consumed),
        if outcome.decided {
            "early (confident)".to_string()
        } else {
            "cap (no decision)".to_string()
        },
        format!("{:.1}", outcome.margin),
        if outcome.correct {
            correct_label.to_string()
        } else {
            "no".to_string()
        },
    ]
}

/// Appends the headline note — ciphertexts consumed at stop — plus the
/// explicit no-decision accounting.
fn headline_note(report: &mut ExperimentReport, outcomes: &[StreamOutcome], unit: &str, cap: u64) {
    let mut at_stop: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.decided)
        .map(|o| o.consumed)
        .collect();
    at_stop.sort_unstable();
    if at_stop.is_empty() {
        report.note(format!(
            "headline — {unit}s consumed at stop: NO DECISION on any trial; every stream ran to \
             the cap of {} without clearing the confidence threshold",
            format_units(cap)
        ));
    } else {
        let median = at_stop[at_stop.len() / 2];
        report.note(format!(
            "headline — {unit}s consumed at stop: median {} over {}/{} decided trials \
             ({} hit the cap of {} with no decision)",
            format_units(median),
            at_stop.len(),
            outcomes.len(),
            outcomes.len() - at_stop.len(),
            format_units(cap)
        ));
    }
}

// ---------------------------------------------------------------------------
// fig7-stream
// ---------------------------------------------------------------------------

/// Configuration of the streaming two-byte recovery (`fig7 --until-confident`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7StreamConfig {
    /// Independent streaming sessions to simulate.
    pub trials: usize,
    /// ABSAB relations combined with the FM biases (as in `fig7`'s combined
    /// strategy).
    pub absab_relations: usize,
    /// Keystream position of the unknown pair (determines the FM cells).
    pub position: u64,
    /// The early-stopping rule (units: ciphertexts).
    pub stop: StopRule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig7StreamConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Laptop)
    }
}

impl Fig7StreamConfig {
    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        let base = Self {
            trials: 16,
            absab_relations: 64,
            position: 257,
            stop: StopRule {
                threshold: 10.0,
                batch: 1 << 30,
                cap: 1 << 35,
            },
            seed: 0x57F7,
        };
        match scale {
            Scale::Quick => Self {
                trials: 4,
                absab_relations: 32,
                stop: StopRule {
                    threshold: 10.0,
                    batch: 1 << 31,
                    cap: 1 << 35,
                },
                ..base
            },
            Scale::Laptop => base,
            Scale::Extended => Self {
                trials: 64,
                absab_relations: 258,
                stop: StopRule {
                    threshold: 10.0,
                    batch: 1 << 30,
                    cap: 1 << 37,
                },
                ..base
            },
        }
    }
}

/// One ABSAB relation's streaming state: the differential-count distribution
/// for this trial's truth, the log weights, and the in-place accumulator.
struct RelationStream {
    known: (usize, usize),
    probs: Vec<f64>,
    ln_alpha: f64,
    ln_rest: f64,
    acc: StreamingCounts,
}

/// Runs one streaming fig7 session: ingest batches, re-score the accumulated
/// tables, stop at the first confident batch or at the cap.
fn fig7_stream_trial(
    config: &Fig7StreamConfig,
    key_pair_probs: &[f64],
    fm_cells: &[(u8, u8, f64)],
    rng: &mut StdRng,
    ctx: &ExperimentContext,
) -> Result<StreamOutcome, ExperimentError> {
    let truth: (u8, u8) = (rng.gen(), rng.gen());

    // Ciphertext-pair distribution: the keystream distribution XORed with
    // the (unknown to the attacker) plaintext pair.
    let mut ct_probs = vec![0.0f64; 65536];
    for k1 in 0..256usize {
        for k2 in 0..256usize {
            let c1 = k1 ^ truth.0 as usize;
            let c2 = k2 ^ truth.1 as usize;
            ct_probs[(c1 << 8) | c2] = key_pair_probs[(k1 << 8) | k2];
        }
    }
    let mut fm_acc = StreamingCounts::new(65536).map_err(ExperimentError::from)?;

    // Per-relation differential distributions, as in fig7's combined
    // strategy (gaps cycle 0..=127, known pairs arbitrary but known).
    let mut relations = Vec::with_capacity(config.absab_relations);
    for rel in 0..config.absab_relations {
        let gap = rel % 128;
        let known = ((gap as u8).wrapping_mul(17), (gap as u8).wrapping_add(91));
        let a = alpha(gap);
        let true_diff = (truth.0 ^ known.0, truth.1 ^ known.1);
        let mut probs = vec![(1.0 - a) / 65535.0; 65536];
        probs[(true_diff.0 as usize) << 8 | true_diff.1 as usize] = a;
        relations.push(RelationStream {
            known: (known.0 as usize, known.1 as usize),
            probs,
            ln_alpha: a.ln(),
            ln_rest: ((1.0 - a) / 65535.0).ln(),
            acc: StreamingCounts::new(65536).map_err(ExperimentError::from)?,
        });
    }

    let mut test = config.stop.test()?;
    let mut consumed = 0u64;
    let mut margin = 0.0f64;
    let mut correct = false;
    while consumed < config.stop.cap {
        // A trial spans many ingest batches; poll cancellation per batch so a
        // raised flag interrupts the stream promptly, not at the next trial.
        ctx.checkpoint()?;
        // Ingest one batch of simulated ciphertext copies into the
        // accumulated count tables (in place — nothing is re-materialized).
        let batch = (config.stop.cap - consumed).min(config.stop.batch);
        fm_acc
            .absorb(&sample_counts_normal(&ct_probs, batch, rng))
            .map_err(ExperimentError::from)?;
        for rel in &mut relations {
            rel.acc
                .absorb(&sample_counts_normal(&rel.probs, batch, rng))
                .map_err(ExperimentError::from)?;
        }
        consumed += batch;

        // Re-score the ACCUMULATED tables. Log-likelihoods are linear in
        // counts, so this is exactly the score of all ciphertexts seen so
        // far, at the cost of scoring a single batch.
        let fm = PairLikelihoods::from_counts_sparse(
            fm_acc.counts(),
            fm_cells,
            UNIFORM_PAIR,
            fm_acc.total(),
        )?;
        let mut log = fm.as_slice().to_vec();
        for rel in &relations {
            let total = rel.acc.total() as f64;
            let counts = rel.acc.counts();
            for (mu1, row) in log.chunks_mut(256).enumerate() {
                let d0 = mu1 ^ rel.known.0;
                let counts_row = &counts[(d0 << 8)..(d0 << 8) + 256];
                for (mu2, slot) in row.iter_mut().enumerate() {
                    let hits = counts_row[mu2 ^ rel.known.1] as f64;
                    *slot += (total - hits) * rel.ln_rest + hits * rel.ln_alpha;
                }
            }
        }
        let combined = PairLikelihoods::from_log_values(log)?;
        margin = combined.margin();
        correct = combined.best() == truth;
        if test.observe(consumed, margin).is_decided() {
            break;
        }
    }
    let decided = test.is_decided();
    let (consumed, margin) = test.decision().unwrap_or((consumed, margin));
    Ok(StreamOutcome {
        consumed,
        decided,
        margin,
        correct,
    })
}

/// Runs the streaming fig7 experiment under an explicit context.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for degenerate configurations,
/// [`ExperimentError::Cancelled`] when the context flag is raised, and
/// propagates component errors.
pub fn run_fig7_stream(
    config: &Fig7StreamConfig,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    if config.trials == 0 {
        return Err(ExperimentError::InvalidConfig(
            "need at least one streaming trial".into(),
        ));
    }
    config.stop.test()?;

    let fm_dist = PairDistribution::fluhrer_mcgrew(config.position);
    let mut key_pair_probs = vec![0.0f64; 65536];
    for k1 in 0..256usize {
        for k2 in 0..256usize {
            key_pair_probs[(k1 << 8) | k2] = fm_dist.prob(k1 as u8, k2 as u8);
        }
    }
    let fm_cells: Vec<(u8, u8, f64)> = fm::fm_biases_at(config.position)
        .into_iter()
        .map(|b| (b.first, b.second, b.probability))
        .collect();

    // Every trial is an independent streaming session on its own RNG stream,
    // fanned out across the executor: byte-identical for any worker count.
    let base_seed = ctx.mix_seed(config.seed);
    let reporter = ctx.progress("fig7-stream", config.trials as u64, "trial");
    let outcomes: Vec<StreamOutcome> = ctx
        .executor()
        .map((0..config.trials).collect(), |_, trial| {
            ctx.checkpoint()?;
            let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, &[trial as u64]));
            let outcome = fig7_stream_trial(config, &key_pair_probs, &fm_cells, &mut rng, ctx)?;
            reporter.tick(1);
            Ok::<_, ExperimentError>(outcome)
        })
        .map_err(ExperimentError::from)?;

    let mut report = ExperimentReport::new(
        "fig7-stream",
        "Streaming two-byte recovery: ciphertexts consumed until confident",
        &[
            "trial",
            "ciphertexts at stop",
            "stopped",
            "margin",
            "correct",
        ],
    );
    headline_note(&mut report, &outcomes, "ciphertext", config.stop.cap);
    report.note(format!(
        "stop rule: top-candidate margin ≥ {} nats, re-scored every {} ciphertexts, cap {}; \
         FM + {} ABSAB relations, sampled mode",
        config.stop.threshold,
        format_units(config.stop.batch),
        format_units(config.stop.cap),
        config.absab_relations
    ));
    for (trial, outcome) in outcomes.iter().enumerate() {
        report.push_row(&outcome_row(trial, outcome, "yes"));
    }
    Ok(report)
}

/// [`Experiment`] carrier for the streaming fig7 variant.
pub struct Fig7StreamExperiment {
    config: Fig7StreamConfig,
}

impl Fig7StreamExperiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: Fig7StreamConfig::for_scale(Scale::Laptop),
        }
    }
}

impl Default for Fig7StreamExperiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for Fig7StreamExperiment {
    fn name(&self) -> &'static str {
        "fig7-stream"
    }

    fn summary(&self) -> &'static str {
        "Streaming two-byte recovery with early stopping (fig7 --until-confident)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = Fig7StreamConfig::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: "fig7-stream",
        });
        let report = run_fig7_stream(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: "fig7-stream",
        });
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// fig10-stream
// ---------------------------------------------------------------------------

/// Configuration of the streaming cookie recovery (`fig10 --until-confident`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10StreamConfig {
    /// Independent streaming sessions to simulate.
    pub trials: usize,
    /// Cookie length in bytes.
    pub cookie_len: usize,
    /// Cookie alphabet.
    pub charset: Charset,
    /// Candidate-list budget per re-score.
    pub candidates: usize,
    /// ABSAB relations contributing per transition.
    pub absab_relations: usize,
    /// Keystream position (1-based) of the first cookie byte.
    pub cookie_position: u64,
    /// The early-stopping rule (units: captured requests).
    pub stop: StopRule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig10StreamConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Laptop)
    }
}

impl Fig10StreamConfig {
    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        let base = Self {
            trials: 8,
            cookie_len: 8,
            charset: Charset::base64(),
            candidates: 1 << 10,
            absab_relations: 24,
            cookie_position: 321,
            stop: StopRule {
                threshold: 10.0,
                batch: 1 << 28,
                cap: 1 << 33,
            },
            seed: 0x57F10,
        };
        match scale {
            Scale::Quick => Self {
                trials: 2,
                cookie_len: 4,
                candidates: 128,
                absab_relations: 12,
                stop: StopRule {
                    threshold: 10.0,
                    batch: 1 << 29,
                    cap: 1 << 33,
                },
                ..base
            },
            Scale::Laptop => base,
            Scale::Extended => Self {
                trials: 32,
                cookie_len: 16,
                candidates: 1 << 15,
                absab_relations: 258,
                stop: StopRule {
                    threshold: 10.0,
                    batch: 1 << 28,
                    cap: 1 << 35,
                },
                ..base
            },
        }
    }
}

/// Streaming state of one cookie transition: the trial's ground-truth
/// ciphertext-pair distribution, the FM count accumulator, the ABSAB vote
/// accumulator, and the relation metadata needed to draw each batch.
struct TransitionStream {
    ct_probs: Vec<f64>,
    fm_cells: Vec<(u8, u8, f64)>,
    fm_acc: StreamingCounts,
    votes: StreamingVotes,
    rels: Vec<TransitionRelation>,
}

struct TransitionRelation {
    known: (u8, u8),
    weight: f64,
    true_diff_idx: usize,
    alpha: f64,
}

/// Runs one streaming fig10 session.
fn fig10_stream_trial(
    config: &Fig10StreamConfig,
    transition_probs: &[Vec<f64>],
    rng: &mut StdRng,
    ctx: &ExperimentContext,
) -> Result<StreamOutcome, ExperimentError> {
    let alphabet = config.charset.values().to_vec();
    let cookie: Vec<u8> = (0..config.cookie_len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect();
    let before = b'=';
    let after = b';';
    let full: Vec<u8> = std::iter::once(before)
        .chain(cookie.iter().copied())
        .chain(std::iter::once(after))
        .collect();

    let mut transitions = Vec::with_capacity(config.cookie_len + 1);
    for t in 0..=config.cookie_len {
        let truth = (full[t], full[t + 1]);
        let mut ct_probs = vec![0.0f64; 65536];
        for k1 in 0..256usize {
            for k2 in 0..256usize {
                let c1 = k1 ^ truth.0 as usize;
                let c2 = k2 ^ truth.1 as usize;
                ct_probs[(c1 << 8) | c2] = transition_probs[t][(k1 << 8) | k2];
            }
        }
        let fm_cells: Vec<(u8, u8, f64)> = fm::fm_biases_at(config.cookie_position + t as u64)
            .into_iter()
            .map(|b| (b.first, b.second, b.probability))
            .collect();
        let mut rels = Vec::with_capacity(config.absab_relations);
        for rel in 0..config.absab_relations {
            let gap = rel % 128;
            let a = alpha(gap);
            let known = ((rel as u8).wrapping_mul(31), (rel as u8).wrapping_add(7));
            rels.push(TransitionRelation {
                known,
                weight: a.ln() - ((1.0 - a) / 65535.0).ln(),
                true_diff_idx: ((truth.0 ^ known.0) as usize) << 8 | (truth.1 ^ known.1) as usize,
                alpha: a,
            });
        }
        transitions.push(TransitionStream {
            ct_probs,
            fm_cells,
            fm_acc: StreamingCounts::new(65536).map_err(ExperimentError::from)?,
            votes: StreamingVotes::new(65536).map_err(ExperimentError::from)?,
            rels,
        });
    }

    let viterbi = ViterbiConfig {
        first_known: before,
        last_known: after,
        candidates: config.candidates,
        charset: config.charset.clone(),
    };
    let mut test = config.stop.test()?;
    let mut consumed = 0u64;
    let mut margin = 0.0f64;
    let mut correct = false;
    let mut batch_votes = vec![0.0f64; 65536];
    while consumed < config.stop.cap {
        // Per-batch cancellation poll, as in fig7_stream_trial.
        ctx.checkpoint()?;
        let batch = (config.stop.cap - consumed).min(config.stop.batch);
        let n_f = batch as f64;
        for tr in &mut transitions {
            // FM ingest: one batch of ciphertext-pair counts.
            tr.fm_acc
                .absorb(&sample_counts_normal(&tr.ct_probs, batch, rng))
                .map_err(ExperimentError::from)?;
            // ABSAB ingest: per-relation weighted differential votes for this
            // batch, accumulated in place (votes are linear in counts, so the
            // running table equals the votes of all requests seen so far).
            batch_votes.iter_mut().for_each(|v| *v = 0.0);
            for rel in &tr.rels {
                let u = (1.0 - rel.alpha) / 65535.0;
                let mean_other = n_f * u;
                let sd_other = (n_f * u * (1.0 - u)).sqrt();
                let mean_true = n_f * rel.alpha;
                let sd_true = (n_f * rel.alpha * (1.0 - rel.alpha)).sqrt();
                for d0 in 0..256usize {
                    for d1 in 0..256usize {
                        let idx = (d0 << 8) | d1;
                        let (mean, sd) = if idx == rel.true_diff_idx {
                            (mean_true, sd_true)
                        } else {
                            (mean_other, sd_other)
                        };
                        let draw = mean + sd * sample_standard_normal(rng);
                        let mu = ((d0 ^ rel.known.0 as usize) << 8) | (d1 ^ rel.known.1 as usize);
                        batch_votes[mu] += rel.weight * draw.max(0.0);
                    }
                }
            }
            tr.votes
                .absorb(&batch_votes)
                .map_err(ExperimentError::from)?;
        }
        consumed += batch;

        // Re-score: combined FM + ABSAB likelihood per transition from the
        // accumulated tables, then a fresh list-Viterbi decode.
        let mut likelihoods = Vec::with_capacity(transitions.len());
        for tr in &transitions {
            let mut combined = PairLikelihoods::from_counts_sparse(
                tr.fm_acc.counts(),
                &tr.fm_cells,
                UNIFORM_PAIR,
                tr.fm_acc.total(),
            )?;
            combined.combine(&PairLikelihoods::from_log_values(
                tr.votes.votes().to_vec(),
            )?);
            likelihoods.push(combined);
        }
        let candidates = list_viterbi(&likelihoods, &viterbi)?;
        margin = candidate_margin(&candidates).unwrap_or(0.0);
        correct = candidates.first().is_some_and(|c| c.plaintext == cookie);
        if test.observe(consumed, margin).is_decided() {
            break;
        }
    }
    let decided = test.is_decided();
    let (consumed, margin) = test.decision().unwrap_or((consumed, margin));
    Ok(StreamOutcome {
        consumed,
        decided,
        margin,
        correct,
    })
}

/// Runs the streaming fig10 experiment under an explicit context.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for degenerate configurations,
/// [`ExperimentError::Cancelled`] when the context flag is raised, and
/// propagates component errors.
pub fn run_fig10_stream(
    config: &Fig10StreamConfig,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    if config.trials == 0 || config.cookie_len == 0 || config.candidates == 0 {
        return Err(ExperimentError::InvalidConfig(
            "need at least one trial, a non-empty cookie and a candidate budget".into(),
        ));
    }
    config.stop.test()?;

    let transition_probs: Vec<Vec<f64>> = (0..=config.cookie_len)
        .map(|t| {
            let fm_dist = PairDistribution::fluhrer_mcgrew(config.cookie_position + t as u64);
            let mut probs = vec![0.0f64; 65536];
            for k1 in 0..256usize {
                for k2 in 0..256usize {
                    probs[(k1 << 8) | k2] = fm_dist.prob(k1 as u8, k2 as u8);
                }
            }
            probs
        })
        .collect();

    let base_seed = ctx.mix_seed(config.seed);
    let reporter = ctx.progress("fig10-stream", config.trials as u64, "trial");
    let outcomes: Vec<StreamOutcome> = ctx
        .executor()
        .map((0..config.trials).collect(), |_, trial| {
            ctx.checkpoint()?;
            let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, &[trial as u64]));
            let outcome = fig10_stream_trial(config, &transition_probs, &mut rng, ctx)?;
            reporter.tick(1);
            Ok::<_, ExperimentError>(outcome)
        })
        .map_err(ExperimentError::from)?;

    let mut report = ExperimentReport::new(
        "fig10-stream",
        "Streaming cookie recovery: requests consumed until confident",
        &[
            "trial",
            "requests at stop",
            "stopped",
            "margin",
            "cookie recovered",
        ],
    );
    headline_note(&mut report, &outcomes, "request", config.stop.cap);
    report.note(format!(
        "stop rule: top-candidate margin ≥ {} nats, re-scored every {} requests, cap {}; \
         {}-byte cookie over {} characters, {} candidates, {} ABSAB relations, sampled mode",
        config.stop.threshold,
        format_units(config.stop.batch),
        format_units(config.stop.cap),
        config.cookie_len,
        config.charset.len(),
        config.candidates,
        config.absab_relations
    ));
    for (trial, outcome) in outcomes.iter().enumerate() {
        report.push_row(&outcome_row(trial, outcome, "yes"));
    }
    Ok(report)
}

/// [`Experiment`] carrier for the streaming fig10 variant.
pub struct Fig10StreamExperiment {
    config: Fig10StreamConfig,
}

impl Fig10StreamExperiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: Fig10StreamConfig::for_scale(Scale::Laptop),
        }
    }
}

impl Default for Fig10StreamExperiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for Fig10StreamExperiment {
    fn name(&self) -> &'static str {
        "fig10-stream"
    }

    fn summary(&self) -> &'static str {
        "Streaming cookie recovery with early stopping (fig10 --until-confident)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = Fig10StreamConfig::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: "fig10-stream",
        });
        let report = run_fig10_stream(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: "fig10-stream",
        });
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// tls-cookie-stream
// ---------------------------------------------------------------------------

/// Configuration of the streaming end-to-end HTTPS cookie attack
/// (`tls-cookie --until-confident`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TlsCookieStreamConfig {
    /// The secret cookie value (non-empty, drawn from `charset`).
    pub cookie: String,
    /// Cookie alphabet used for candidate generation.
    pub charset: Charset,
    /// Maximum ABSAB gap exploited.
    pub max_gap: usize,
    /// Candidate-list budget per re-score.
    pub candidates: usize,
    /// The early-stopping rule (units: captured requests).
    pub stop: StopRule,
    /// Base RNG seed for the traffic generator.
    pub seed: u64,
}

impl Default for TlsCookieStreamConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Laptop)
    }
}

impl TlsCookieStreamConfig {
    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        let base = Self {
            cookie: "dGhpc2lzc2VjcmV0".to_string(),
            charset: Charset::base64(),
            max_gap: 64,
            candidates: 1 << 12,
            stop: StopRule {
                threshold: 20.0,
                batch: 4096,
                cap: 20_000,
            },
            seed: 0x71C6,
        };
        match scale {
            Scale::Quick => Self {
                max_gap: 32,
                candidates: 256,
                stop: StopRule {
                    threshold: 20.0,
                    batch: 512,
                    cap: 1536,
                },
                ..base
            },
            Scale::Laptop => base,
            Scale::Extended => Self {
                max_gap: 128,
                candidates: 1 << 15,
                stop: StopRule {
                    threshold: 20.0,
                    batch: 16_384,
                    cap: 200_000,
                },
                ..base
            },
        }
    }
}

/// Runs the streaming end-to-end HTTPS cookie attack: real TLS RC4-SHA1
/// captures stream into the incremental [`CookieStatistics`] table and the
/// ranked candidate list is re-scored after every batch.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for degenerate configurations,
/// [`ExperimentError::Cancelled`] when the context flag is raised, and
/// propagates component errors.
pub fn run_tls_cookie_stream(
    config: &TlsCookieStreamConfig,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let cookie = config.cookie.as_bytes().to_vec();
    if cookie.is_empty() || config.candidates == 0 {
        return Err(ExperimentError::InvalidConfig(
            "candidates and the cookie must be non-empty".into(),
        ));
    }
    if !config.charset.accepts(&cookie) {
        return Err(ExperimentError::InvalidConfig(
            "the cookie contains bytes outside the configured charset".into(),
        ));
    }
    config.stop.test()?;

    let mut report = ExperimentReport::new(
        "tls-cookie-stream",
        "Streaming HTTPS cookie recovery over real TLS RC4-SHA1 traffic",
        &["stage", "metric", "value"],
    );
    report.note(format!(
        "stop rule: top-candidate margin ≥ {} nats, re-scored every {} captures, cap {}; \
         real biases need ~9 x 2^27 captures, so sub-paper-scale runs are expected to \
         end at the cap with no decision",
        config.stop.threshold, config.stop.batch, config.stop.cap
    ));

    let mut template = RequestTemplate::new("site.com", "auth", cookie.len());
    template.align_cookie(0, 0, MAC_LEN);
    let mut traffic = TrafficGenerator::new(
        template.clone(),
        cookie.clone(),
        TrafficConfig {
            seed: ctx.mix_seed(config.seed),
            ..TrafficConfig::default()
        },
    )
    .map_err(ExperimentError::from)?;
    let mut stats =
        CookieStatistics::new(&template, config.max_gap).map_err(ExperimentError::from)?;
    let attack_config = CookieAttackConfig {
        max_gap: config.max_gap,
        candidates: config.candidates,
        charset: config.charset.clone(),
        use_fm: true,
        use_absab: true,
    };

    // A streaming capture loop has no predetermined length — the whole point
    // is to stop early — so the progress total is "unknown" (0) and every
    // tick goes through the plain rate limiter.
    let reporter = ctx.progress("tls-cookie-stream", 0, "capture");
    let mut test = config.stop.test()?;
    let mut consumed = 0u64;
    let mut margin = 0.0f64;
    let mut candidates = Vec::new();
    while consumed < config.stop.cap {
        ctx.checkpoint()?;
        // Ingest: capture one batch of encrypted requests and fold each into
        // the incremental per-transition count tables.
        let batch = (config.stop.cap - consumed).min(config.stop.batch) as usize;
        for capture in traffic.capture(batch).map_err(ExperimentError::from)? {
            stats.add(&capture).map_err(ExperimentError::from)?;
        }
        consumed += batch as u64;
        reporter.tick(batch as u64);

        // Re-score: fresh candidate ranking from the accumulated statistics
        // (analysis fans out on the context executor — worker-invariant).
        candidates = cookie_candidates_with_exec(&stats, &attack_config, &ctx.executor())
            .map_err(ExperimentError::from)?;
        margin = candidate_margin(&candidates).unwrap_or(0.0);
        if test.observe(consumed, margin).is_decided() {
            break;
        }
    }
    let decided = test.is_decided();
    let (consumed, margin) = test.decision().unwrap_or((consumed, margin));

    report.push_row(&[
        "streaming".to_string(),
        "captures consumed at stop".to_string(),
        consumed.to_string(),
    ]);
    report.push_row(&[
        "streaming".to_string(),
        format!("stop decision (threshold {} nats)", config.stop.threshold),
        if decided {
            format!("confident (margin {margin:.1})")
        } else {
            format!("no decision — cap reached (margin {margin:.1})")
        },
    ]);
    report.push_row(&[
        "candidates".to_string(),
        "ranked cookie candidates generated".to_string(),
        candidates.len().to_string(),
    ]);
    let outcome = brute_force_cookie(&candidates, |guess| guess == cookie.as_slice());
    report.push_row(&[
        "brute force".to_string(),
        "cookie recovered".to_string(),
        if outcome.cookie.is_some() {
            "yes"
        } else {
            "no"
        }
        .to_string(),
    ]);
    report.push_row(&[
        "brute force".to_string(),
        "attempts / candidate rank".to_string(),
        format!(
            "{} / {}",
            outcome.attempts,
            outcome
                .candidate_index
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".to_string())
        ),
    ]);
    Ok(report)
}

/// [`Experiment`] carrier for the streaming TLS cookie attack.
pub struct TlsCookieStreamExperiment {
    config: TlsCookieStreamConfig,
}

impl TlsCookieStreamExperiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: TlsCookieStreamConfig::for_scale(Scale::Laptop),
        }
    }
}

impl Default for TlsCookieStreamExperiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for TlsCookieStreamExperiment {
    fn name(&self) -> &'static str {
        "tls-cookie-stream"
    }

    fn summary(&self) -> &'static str {
        "Streaming HTTPS cookie attack with early stopping (tls-cookie --until-confident)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = TlsCookieStreamConfig::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: "tls-cookie-stream",
        });
        let report = run_tls_cookie_stream(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: "tls-cookie-stream",
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fig7() -> Fig7StreamConfig {
        Fig7StreamConfig {
            trials: 2,
            absab_relations: 8,
            stop: StopRule {
                threshold: 10.0,
                batch: 1 << 28,
                cap: 1 << 30,
            },
            ..Fig7StreamConfig::for_scale(Scale::Quick)
        }
    }

    #[test]
    fn stop_rule_validation() {
        let mut rule = StopRule {
            threshold: 5.0,
            batch: 10,
            cap: 100,
        };
        assert!(rule.test().is_ok());
        rule.batch = 0;
        assert!(rule.test().is_err());
        rule.batch = 200;
        assert!(rule.test().is_err(), "cap smaller than one batch");
        rule.batch = 10;
        rule.threshold = 0.0;
        assert!(rule.test().is_err());
        rule.threshold = f64::INFINITY;
        assert!(rule.test().is_err());
    }

    #[test]
    fn fig7_stream_validation_and_roundtrip() {
        let no_trials = Fig7StreamConfig {
            trials: 0,
            ..small_fig7()
        };
        assert!(run_fig7_stream(&no_trials, &ExperimentContext::default()).is_err());

        let config = Fig7StreamConfig::for_scale(Scale::Quick);
        let json = serde_json::to_string(&config).unwrap();
        let back: Fig7StreamConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn fig7_stream_never_clearing_threshold_reports_no_decision() {
        // A threshold no simulated margin can reach: every trial must run to
        // the cap and say so explicitly.
        let config = Fig7StreamConfig {
            stop: StopRule {
                threshold: 1e15,
                batch: 1 << 27,
                cap: 1 << 28,
            },
            ..small_fig7()
        };
        let report = run_fig7_stream(&config, &ExperimentContext::default()).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("NO DECISION")));
        for row in &report.rows {
            assert_eq!(row.cells[1], format_units(1 << 28));
            assert_eq!(row.cells[2], "cap (no decision)");
        }
    }

    #[test]
    fn fig7_stream_tiny_threshold_stops_after_first_batch() {
        // Any non-degenerate ranking clears a near-zero threshold at the
        // first re-score, so every trial stops after exactly one batch.
        let config = Fig7StreamConfig {
            stop: StopRule {
                threshold: 1e-9,
                batch: 1 << 27,
                cap: 1 << 30,
            },
            ..small_fig7()
        };
        let report = run_fig7_stream(&config, &ExperimentContext::default()).unwrap();
        for row in &report.rows {
            assert_eq!(row.cells[1], format_units(1 << 27));
            assert_eq!(row.cells[2], "early (confident)");
        }
        assert!(report.notes.iter().any(|n| n.contains("2/2 decided")));
    }

    #[test]
    fn fig7_stream_is_worker_invariant_and_cancellable() {
        let config = small_fig7();
        let one = run_fig7_stream(&config, &ExperimentContext::default().with_workers(1)).unwrap();
        let four = run_fig7_stream(&config, &ExperimentContext::default().with_workers(4)).unwrap();
        assert_eq!(one, four);

        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        let mut exp = Fig7StreamExperiment::new();
        exp.apply_scale(Scale::Quick);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }

    #[test]
    fn streaming_trials_poll_cancellation_per_ingest_batch() {
        // The trial functions themselves must observe the flag between ingest
        // batches: with a raised flag a direct trial call may not run to the
        // cap (before the fix it had no cancellation path at all and would).
        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);

        let fig7 = small_fig7();
        let mut rng = StdRng::seed_from_u64(1);
        let probs = vec![1.0 / 65536.0; 65536];
        let cells = vec![(0u8, 0u8, UNIFORM_PAIR * 1.5)];
        assert_eq!(
            fig7_stream_trial(&fig7, &probs, &cells, &mut rng, &ctx),
            Err(ExperimentError::Cancelled)
        );

        let fig10 = Fig10StreamConfig {
            trials: 1,
            cookie_len: 2,
            candidates: 16,
            absab_relations: 2,
            charset: Charset::hex_lower(),
            ..Fig10StreamConfig::for_scale(Scale::Quick)
        };
        let transition_probs = vec![vec![1.0 / 65536.0; 65536]; fig10.cookie_len + 1];
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            fig10_stream_trial(&fig10, &transition_probs, &mut rng, &ctx),
            Err(ExperimentError::Cancelled)
        );
    }

    #[test]
    fn fig7_stream_cancel_mid_trial_interrupts_between_batches() {
        // One trial, many batches: a cancel raised while the trial is in its
        // ingest loop must abort that trial at the next batch boundary
        // instead of letting it stream to the cap.
        let config = Fig7StreamConfig {
            trials: 1,
            absab_relations: 8,
            stop: StopRule {
                threshold: 1e15, // undecidable: only cancellation can stop early
                batch: 1 << 27,
                cap: 1 << 40, // ~8000 batches; a full run would take hours
            },
            ..Fig7StreamConfig::for_scale(Scale::Quick)
        };
        let handle = crate::context::CancelHandle::new();
        let ctx = ExperimentContext::default().with_cancel(handle.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            handle.cancel();
        });
        let result = run_fig7_stream(&config, &ctx);
        canceller.join().unwrap();
        assert_eq!(result, Err(ExperimentError::Cancelled));
    }

    #[test]
    fn fig10_stream_runs_and_is_worker_invariant() {
        let config = Fig10StreamConfig {
            trials: 1,
            cookie_len: 3,
            candidates: 32,
            absab_relations: 4,
            charset: Charset::hex_lower(),
            stop: StopRule {
                threshold: 1e15,
                batch: 1 << 28,
                cap: 1 << 29,
            },
            ..Fig10StreamConfig::for_scale(Scale::Quick)
        };
        let one = run_fig10_stream(&config, &ExperimentContext::default().with_workers(1)).unwrap();
        let four =
            run_fig10_stream(&config, &ExperimentContext::default().with_workers(4)).unwrap();
        assert_eq!(one, four);
        assert_eq!(one.rows.len(), 1);
        assert_eq!(one.rows[0].cells[2], "cap (no decision)");

        let json = serde_json::to_string(&config).unwrap();
        let back: Fig10StreamConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn tls_cookie_stream_hits_cap_without_paper_scale_captures() {
        // Real biases are far too weak at a few hundred captures: the honest
        // outcome is "no decision at the cap", reported clearly.
        let config = TlsCookieStreamConfig {
            candidates: 64,
            stop: StopRule {
                threshold: 1e15,
                batch: 128,
                cap: 384,
            },
            ..TlsCookieStreamConfig::for_scale(Scale::Quick)
        };
        let report = run_tls_cookie_stream(&config, &ExperimentContext::default()).unwrap();
        let consumed = report
            .rows
            .iter()
            .find(|r| r.cells[1].contains("consumed"))
            .unwrap();
        assert_eq!(consumed.cells[2], "384");
        let decision = report
            .rows
            .iter()
            .find(|r| r.cells[1].contains("stop decision"))
            .unwrap();
        assert!(decision.cells[2].contains("no decision"));

        let json = serde_json::to_string(&config).unwrap();
        let back: TlsCookieStreamConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn tls_cookie_stream_validation_and_cancellation() {
        let empty_cookie = TlsCookieStreamConfig {
            cookie: String::new(),
            ..TlsCookieStreamConfig::for_scale(Scale::Quick)
        };
        assert!(run_tls_cookie_stream(&empty_cookie, &ExperimentContext::default()).is_err());

        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        let mut exp = TlsCookieStreamExperiment::new();
        exp.apply_scale(Scale::Quick);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }
}
