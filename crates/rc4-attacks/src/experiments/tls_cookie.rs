//! The `tls-cookie` experiment: the Section-6 HTTPS cookie attack end to
//! end, promoted from the `https_cookie_attack` example into a registered
//! experiment so the full paper pipeline is reachable from the registry.
//!
//! One run drives the real machinery the paper's tool used:
//!
//! 1. build the manipulated request of Listing 3 and align the cookie to a
//!    favourable keystream position,
//! 2. generate victim traffic over real TLS RC4-SHA1 record-layer
//!    connections and capture the encrypted requests,
//! 3. accumulate Fluhrer–McGrew and ABSAB statistics at the cookie
//!    positions, and
//! 4. generate the ranked candidate list (Algorithm 2 over the cookie
//!    alphabet) and brute-force it against an oracle standing in for the web
//!    server.
//!
//! Real RC4 biases need `~9 x 2^27` captures for a reliable hit, so at quick
//! and laptop scales the brute force usually misses — the experiment reports
//! the full pipeline's mechanics (capture rates, candidate ranking, wall-clock
//! budgets) faithfully either way; the Fig. 10 experiment covers the success
//! curves in sampled mode.

use serde::{Deserialize, Serialize};

use plaintext_recovery::charset::Charset;
use tls_rc4::{
    attack::{
        brute_force_cookie, brute_force_rate_seconds, cookie_candidates_with_exec,
        CookieAttackConfig, CookieStatistics,
    },
    http::RequestTemplate,
    record::MAC_LEN,
    traffic::{TrafficConfig, TrafficGenerator},
};

use crate::{
    context::{ExperimentContext, ProgressEvent},
    experiment::{config_from_value, config_to_value, Experiment},
    experiments::Scale,
    report::ExperimentReport,
    ExperimentError,
};

/// Configuration of the end-to-end HTTPS cookie attack experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TlsCookieConfig {
    /// Encrypted requests to capture (the paper needs `~9 x 2^27`).
    pub captures: u64,
    /// The secret cookie value (must be non-empty and drawn from `charset`).
    pub cookie: String,
    /// Cookie alphabet used for candidate generation.
    pub charset: Charset,
    /// Maximum ABSAB gap exploited (the paper uses 128).
    pub max_gap: usize,
    /// Candidate-list budget (the paper brute-forces `2^23`).
    pub candidates: usize,
    /// Base RNG seed for the traffic generator.
    pub seed: u64,
}

impl Default for TlsCookieConfig {
    fn default() -> Self {
        TlsCookieConfig::for_scale(Scale::Laptop)
    }
}

impl TlsCookieConfig {
    /// The preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        let base = Self {
            captures: 20_000,
            cookie: "dGhpc2lzc2VjcmV0".to_string(),
            charset: Charset::base64(),
            max_gap: 64,
            candidates: 1 << 12,
            seed: 0x71C5,
        };
        match scale {
            Scale::Quick => Self {
                captures: 1_500,
                max_gap: 32,
                candidates: 256,
                ..base
            },
            Scale::Laptop => base,
            Scale::Extended => Self {
                captures: 200_000,
                max_gap: 128,
                candidates: 1 << 15,
                ..base
            },
        }
    }
}

/// Runs the end-to-end attack and returns the report.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] for degenerate configurations
/// (empty cookie, cookie outside the charset, zero captures),
/// [`ExperimentError::Cancelled`] when the context flag is raised, and
/// propagates component errors.
pub fn run_with_context(
    config: &TlsCookieConfig,
    ctx: &ExperimentContext,
) -> Result<ExperimentReport, ExperimentError> {
    let cookie = config.cookie.as_bytes().to_vec();
    if cookie.is_empty() || config.captures == 0 || config.candidates == 0 {
        return Err(ExperimentError::InvalidConfig(
            "captures, candidates and the cookie must all be non-empty".into(),
        ));
    }
    if !config.charset.accepts(&cookie) {
        return Err(ExperimentError::InvalidConfig(
            "the cookie contains bytes outside the configured charset".into(),
        ));
    }

    let mut report = ExperimentReport::new(
        "tls-cookie",
        "End-to-end HTTPS cookie recovery over real TLS RC4-SHA1 traffic (Sect. 6)",
        &["stage", "metric", "value"],
    );
    report.note(format!(
        "{} captures, {}-byte cookie over a {}-character alphabet, {} candidates, max ABSAB gap {} \
         (paper: 9 x 2^27 captures, 2^23 candidates, gap 128)",
        config.captures,
        cookie.len(),
        config.charset.len(),
        config.candidates,
        config.max_gap
    ));

    // Stage 1: the manipulated request with the cookie aligned.
    ctx.checkpoint()?;
    let mut template = RequestTemplate::new("site.com", "auth", cookie.len());
    template.align_cookie(0, 0, MAC_LEN);
    report.push_row(&[
        "request".to_string(),
        "bytes (known prefix / secret / known suffix)".to_string(),
        format!(
            "{} ({} / {} / {})",
            template.request_len(),
            template.cookie_offset(),
            cookie.len(),
            template.known_suffix().len()
        ),
    ]);

    // Stage 2: victim traffic over real TLS RC4-SHA1 connections, captured in
    // batches so cancellation lands between batches.
    let mut traffic = TrafficGenerator::new(
        template.clone(),
        cookie.clone(),
        TrafficConfig {
            seed: ctx.mix_seed(config.seed),
            ..TrafficConfig::default()
        },
    )
    .map_err(ExperimentError::from)?;
    let mut stats =
        CookieStatistics::new(&template, config.max_gap).map_err(ExperimentError::from)?;
    // The traffic generator is stateful (persistent connections), so capture
    // stays sequential; per-batch progress goes through the throttled
    // reporter so a multi-million-capture run cannot flood the sink.
    let reporter = ctx.progress("tls-cookie", config.captures, "capture");
    let mut captured = 0u64;
    while captured < config.captures {
        ctx.checkpoint()?;
        let batch = (config.captures - captured).min(1024) as usize;
        for capture in traffic.capture(batch).map_err(ExperimentError::from)? {
            stats.add(&capture).map_err(ExperimentError::from)?;
        }
        captured += batch as u64;
        reporter.tick(batch as u64);
    }
    report.push_row(&[
        "traffic".to_string(),
        "encrypted requests captured".to_string(),
        stats.requests().to_string(),
    ]);
    report.push_row(&[
        "traffic".to_string(),
        "hours for 9 x 2^27 requests at 4450 req/s".to_string(),
        format!("{:.0}", traffic.hours_for(9 * (1u64 << 27))),
    ]);

    // Stage 3 + 4: FM + ABSAB statistics -> Algorithm 2 candidate list ->
    // brute force against the oracle (a stand-in for the real web server).
    ctx.checkpoint()?;
    let attack_config = CookieAttackConfig {
        max_gap: config.max_gap,
        candidates: config.candidates,
        charset: config.charset.clone(),
        use_fm: true,
        use_absab: true,
    };
    // Analysis side — likelihood tables and the list-Viterbi decode — fans
    // out across the context's executor (identical output for any worker
    // count).
    let candidates = cookie_candidates_with_exec(&stats, &attack_config, &ctx.executor())
        .map_err(ExperimentError::from)?;
    report.push_row(&[
        "candidates".to_string(),
        "ranked cookie candidates generated".to_string(),
        candidates.len().to_string(),
    ]);
    report.push_row(&[
        "candidates".to_string(),
        "minutes to brute-force 2^23 at 20000 req/s".to_string(),
        format!("{:.1}", brute_force_rate_seconds(1 << 23, 20_000) / 60.0),
    ]);

    let outcome = brute_force_cookie(&candidates, |guess| guess == cookie.as_slice());
    report.push_row(&[
        "brute force".to_string(),
        "cookie recovered".to_string(),
        if outcome.cookie.is_some() {
            "yes"
        } else {
            "no (expected below ~2^30 captures; see fig10 for the success curve)"
        }
        .to_string(),
    ]);
    report.push_row(&[
        "brute force".to_string(),
        "attempts / candidate rank".to_string(),
        format!(
            "{} / {}",
            outcome.attempts,
            outcome
                .candidate_index
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".to_string())
        ),
    ]);
    Ok(report)
}

/// [`Experiment`] carrier for the end-to-end HTTPS cookie attack.
pub struct TlsCookieExperiment {
    config: TlsCookieConfig,
}

impl TlsCookieExperiment {
    /// Creates the experiment with the `Laptop`-scale preset.
    pub fn new() -> Self {
        Self {
            config: TlsCookieConfig::for_scale(Scale::Laptop),
        }
    }
}

impl Default for TlsCookieExperiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment for TlsCookieExperiment {
    fn name(&self) -> &'static str {
        "tls-cookie"
    }

    fn summary(&self) -> &'static str {
        "End-to-end HTTPS cookie attack over real TLS RC4-SHA1 traffic (Sect. 6)"
    }

    fn apply_scale(&mut self, scale: Scale) {
        self.config = TlsCookieConfig::for_scale(scale);
    }

    fn config_value(&self) -> serde::Value {
        config_to_value(&self.config)
    }

    fn set_config_value(&mut self, value: &serde::Value) -> Result<(), ExperimentError> {
        self.config = config_from_value(self.name(), value)?;
        Ok(())
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        ctx.emit(ProgressEvent::Started {
            experiment: "tls-cookie",
        });
        let report = run_with_context(&self.config, ctx)?;
        ctx.emit(ProgressEvent::Finished {
            experiment: "tls-cookie",
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_and_config_roundtrip() {
        let empty_cookie = TlsCookieConfig {
            cookie: String::new(),
            ..TlsCookieConfig::for_scale(Scale::Quick)
        };
        assert!(run_with_context(&empty_cookie, &ExperimentContext::default()).is_err());
        let outside_charset = TlsCookieConfig {
            cookie: "white space".into(),
            ..TlsCookieConfig::for_scale(Scale::Quick)
        };
        assert!(run_with_context(&outside_charset, &ExperimentContext::default()).is_err());

        let config = TlsCookieConfig::for_scale(Scale::Quick);
        let json = serde_json::to_string(&config).unwrap();
        let back: TlsCookieConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn quick_run_reports_the_full_pipeline() {
        let mut exp = TlsCookieExperiment::new();
        exp.apply_scale(Scale::Quick);
        let config = TlsCookieConfig {
            captures: 400,
            candidates: 64,
            ..TlsCookieConfig::for_scale(Scale::Quick)
        };
        exp.set_config_value(&config_to_value(&config)).unwrap();
        let report = exp.run(&ExperimentContext::default()).unwrap();
        assert_eq!(report.id, "tls-cookie");
        let captured = report
            .rows
            .iter()
            .find(|r| r.cells[1].contains("captured"))
            .unwrap();
        assert_eq!(captured.cells[2], "400");
        let generated = report
            .rows
            .iter()
            .find(|r| r.cells[1].contains("generated"))
            .unwrap();
        assert_eq!(generated.cells[2], "64");
    }

    #[test]
    fn cancellation_aborts() {
        let handle = crate::context::CancelHandle::new();
        handle.cancel();
        let ctx = ExperimentContext::default().with_cancel(handle);
        let mut exp = TlsCookieExperiment::new();
        exp.apply_scale(Scale::Quick);
        assert_eq!(exp.run(&ctx), Err(ExperimentError::Cancelled));
    }
}
