//! Experiment drivers, one module per paper table/figure group.
//!
//! * [`biases`] — the empirical bias-hunting results of Section 3
//!   (Table 1, Table 2, Fig. 4, Fig. 5, Fig. 6, Eq. 3–5, the long-term biases
//!   of Sect. 3.4).
//! * [`fig7`] — the simulated two-byte recovery comparison of Section 4.3.
//! * [`fig8`] — the TKIP MIC-key recovery success rate and candidate-position
//!   curves of Section 5 (Fig. 8 and Fig. 9).
//! * [`fig10`] — the HTTPS cookie brute-force success curve of Section 6.
//!
//! All drivers are deterministic for a fixed configuration (seeds included in
//! the configs) and return [`crate::report::ExperimentReport`]s.

pub mod biases;
pub mod fig10;
pub mod fig7;
pub mod fig8;

/// Scale presets shared by the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI and quick sanity checks.
    Quick,
    /// Minutes-long runs producing readable curves (the default for `repro`).
    Laptop,
    /// Hours-long runs approaching the paper's parameters where feasible.
    Extended,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "laptop" | "default" => Some(Scale::Laptop),
            "extended" | "full" => Some(Scale::Extended),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("LAPTOP"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("full"), Some(Scale::Extended));
        assert_eq!(Scale::parse("nonsense"), None);
    }
}
