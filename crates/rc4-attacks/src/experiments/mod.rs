//! Experiment drivers, one module per paper table/figure group.
//!
//! * [`biases`] — the empirical bias-hunting results of Section 3
//!   (Table 1, Table 2, Fig. 4, Fig. 5, Fig. 6, Eq. 3–5, the long-term biases
//!   of Sect. 3.4).
//! * [`fig7`] — the simulated two-byte recovery comparison of Section 4.3.
//! * [`fig8`] — the TKIP MIC-key recovery success rate and candidate-position
//!   curves of Section 5 (Fig. 8 and Fig. 9).
//! * [`fig10`] — the HTTPS cookie brute-force success curve of Section 6.
//! * [`tkip_attack`] — the end-to-end WPA-TKIP attack of Section 5.
//! * [`tls_cookie`] — the end-to-end HTTPS cookie attack of Section 6.
//!
//! All drivers are deterministic for a fixed configuration (seeds included in
//! the configs) and return [`crate::report::ExperimentReport`]s. Every driver
//! is also exposed as a [`crate::Experiment`] through
//! [`crate::Registry::with_defaults`], which is built from
//! [`default_experiments`].

pub mod biases;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod tkip_attack;
pub mod tls_cookie;

use crate::{experiment::Experiment, registry::ExperimentFactory};

/// Scale presets shared by the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI and quick sanity checks.
    Quick,
    /// Minutes-long runs producing readable curves (the default for `repro`).
    Laptop,
    /// Hours-long runs approaching the paper's parameters where feasible.
    Extended,
}

impl Scale {
    /// All presets, in increasing effort order.
    pub const ALL: [Scale; 3] = [Scale::Quick, Scale::Laptop, Scale::Extended];

    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "laptop" | "default" => Some(Scale::Laptop),
            "extended" | "full" => Some(Scale::Extended),
            _ => None,
        }
    }

    /// The canonical name (the one [`Scale::parse`] always accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Laptop => "laptop",
            Scale::Extended => "extended",
        }
    }
}

/// The built-in experiments in canonical `run all` order, each with its alias
/// list — the single source [`crate::Registry::with_defaults`] is built from.
pub fn default_experiments() -> Vec<(ExperimentFactory, &'static [&'static str])> {
    fn boxed<E: Experiment + Default + 'static>() -> Box<dyn Experiment> {
        Box::new(E::default())
    }
    // `BiasExperiment` has per-experiment constructors rather than `Default`.
    vec![
        (|| Box::new(biases::BiasExperiment::headline()), &[]),
        (|| Box::new(biases::BiasExperiment::table1()), &[]),
        (|| Box::new(biases::BiasExperiment::fig4()), &[]),
        (|| Box::new(biases::BiasExperiment::table2()), &[]),
        (|| Box::new(biases::BiasExperiment::eq345()), &[]),
        (|| Box::new(biases::BiasExperiment::fig5()), &[]),
        (|| Box::new(biases::BiasExperiment::fig6()), &[]),
        (|| Box::new(biases::BiasExperiment::longterm()), &[]),
        (boxed::<fig7::Fig7Experiment>, &[]),
        (
            boxed::<fig8::Fig8Experiment>,
            &["fig9", "fig8_fig9"] as &[&str],
        ),
        (boxed::<fig10::Fig10Experiment>, &[]),
        (boxed::<tkip_attack::TkipAttackExperiment>, &[]),
        (boxed::<tls_cookie::TlsCookieExperiment>, &[]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("LAPTOP"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("full"), Some(Scale::Extended));
        assert_eq!(Scale::parse("nonsense"), None);
        // Canonical names parse back to themselves.
        for scale in Scale::ALL {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
    }
}
