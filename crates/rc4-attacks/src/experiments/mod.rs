//! Experiment drivers, one module per paper table/figure group.
//!
//! * [`biases`] — the empirical bias-hunting results of Section 3
//!   (Table 1, Table 2, Fig. 4, Fig. 5, Fig. 6, Eq. 3–5, the long-term biases
//!   of Sect. 3.4).
//! * [`fig7`] — the simulated two-byte recovery comparison of Section 4.3.
//! * [`fig8`] — the TKIP MIC-key recovery success rate and candidate-position
//!   curves of Section 5 (Fig. 8 and Fig. 9).
//! * [`fig10`] — the HTTPS cookie brute-force success curve of Section 6.
//! * [`tkip_attack`] — the end-to-end WPA-TKIP attack of Section 5.
//! * [`tls_cookie`] — the end-to-end HTTPS cookie attack of Section 6.
//! * [`streaming`] — streaming-ingestion variants of `fig7`, `fig10` and
//!   `tls-cookie` with sequential early stopping (`--until-confident`):
//!   ciphertexts stream in batch by batch, count tables update in place and
//!   the attack stops once the top candidate's likelihood margin clears a
//!   confidence threshold.
//!
//! All drivers are deterministic for a fixed configuration (seeds included in
//! the configs) and return [`crate::report::ExperimentReport`]s. Every driver
//! is also exposed as a [`crate::Experiment`] through
//! [`crate::Registry::with_defaults`], which is built from
//! [`default_experiments`].

pub mod biases;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod streaming;
pub mod tkip_attack;
pub mod tls_cookie;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{experiment::Experiment, registry::ExperimentFactory};

/// Fixed logical stream count for the empirical keystream datasets the
/// attack-model experiments generate ([`CountSource::Empirical`], fig8's
/// empirical traffic model).
///
/// The stream count partitions the deterministic key space and is therefore
/// part of a dataset's identity (it selects WHICH keys are generated and is
/// baked into the dataset-cache lookup). Deriving it from the context's
/// worker budget — as the pre-`rc4-exec` code did — made `--workers` change
/// experiment *results*; pinning it decouples the two: `--workers` now only
/// sets the thread budget of the executor, and outputs are byte-identical
/// for any worker count. Four streams also keep these datasets shardable
/// via `repro dataset generate --worker-range` on up to four machines.
pub const DATASET_STREAMS: usize = 4;

/// Scale presets shared by the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI and quick sanity checks.
    Quick,
    /// Minutes-long runs producing readable curves (the default for `repro`).
    Laptop,
    /// Hours-long runs approaching the paper's parameters where feasible.
    Extended,
}

impl Scale {
    /// All presets, in increasing effort order.
    pub const ALL: [Scale; 3] = [Scale::Quick, Scale::Laptop, Scale::Extended];

    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "laptop" | "default" => Some(Scale::Laptop),
            "extended" | "full" => Some(Scale::Extended),
            _ => None,
        }
    }

    /// The canonical name (the one [`Scale::parse`] always accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Laptop => "laptop",
            Scale::Extended => "extended",
        }
    }
}

/// Where a sampled-mode recovery experiment (`fig7`, `fig10`) takes its
/// ground-truth keystream-pair distributions from.
///
/// The default, [`CountSource::Analytic`], samples ciphertext counts from the
/// closed-form Fluhrer–McGrew distributions the likelihood analysis assumes —
/// the historical behaviour, bit for bit. [`CountSource::Empirical`] instead
/// *measures* the joint distribution of the relevant keystream positions from
/// `keys` real RC4 keystreams (a `rc4-stats` pair dataset, served through the
/// context's dataset cache when one is attached) and samples counts from
/// that, so the estimator is exercised against reality rather than against
/// its own model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountSource {
    /// Closed-form Fluhrer–McGrew distributions (the paper's analysis model).
    Analytic,
    /// Distributions measured from real keystreams.
    Empirical {
        /// Number of RC4 keys used to measure the distributions.
        keys: u64,
    },
}

/// Serialized as a tagged object: `{"kind": "analytic"}` or
/// `{"kind": "empirical", "keys": n}`. Hand-written because the vendored
/// serde derive only covers unit-variant enums.
impl Serialize for CountSource {
    fn to_value(&self) -> Value {
        match self {
            CountSource::Analytic => {
                Value::Object(vec![("kind".into(), Value::Str("analytic".into()))])
            }
            CountSource::Empirical { keys } => Value::Object(vec![
                ("kind".into(), Value::Str("empirical".into())),
                ("keys".into(), keys.to_value()),
            ]),
        }
    }
}

impl Deserialize for CountSource {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "analytic" => Ok(CountSource::Analytic),
            "empirical" => Ok(CountSource::Empirical {
                keys: u64::from_value(v.field("keys")?)?,
            }),
            other => Err(DeError(format!(
                "unknown count source kind '{other}' (expected analytic | empirical)"
            ))),
        }
    }
}

/// The built-in experiments in canonical `run all` order, each with its alias
/// list — the single source [`crate::Registry::with_defaults`] is built from.
pub fn default_experiments() -> Vec<(ExperimentFactory, &'static [&'static str])> {
    fn boxed<E: Experiment + Default + 'static>() -> Box<dyn Experiment> {
        Box::new(E::default())
    }
    // `BiasExperiment` has per-experiment constructors rather than `Default`.
    vec![
        (|| Box::new(biases::BiasExperiment::headline()), &[]),
        (|| Box::new(biases::BiasExperiment::table1()), &[]),
        (|| Box::new(biases::BiasExperiment::fig4()), &[]),
        (|| Box::new(biases::BiasExperiment::table2()), &[]),
        (|| Box::new(biases::BiasExperiment::eq345()), &[]),
        (|| Box::new(biases::BiasExperiment::fig5()), &[]),
        (|| Box::new(biases::BiasExperiment::fig6()), &[]),
        (|| Box::new(biases::BiasExperiment::longterm()), &[]),
        (boxed::<fig7::Fig7Experiment>, &[]),
        (
            boxed::<fig8::Fig8Experiment>,
            &["fig9", "fig8_fig9"] as &[&str],
        ),
        (boxed::<fig10::Fig10Experiment>, &[]),
        (boxed::<tkip_attack::TkipAttackExperiment>, &[]),
        (boxed::<tls_cookie::TlsCookieExperiment>, &[]),
        (
            boxed::<streaming::Fig7StreamExperiment>,
            &["fig7-until-confident"] as &[&str],
        ),
        (
            boxed::<streaming::Fig10StreamExperiment>,
            &["fig10-until-confident"] as &[&str],
        ),
        (
            boxed::<streaming::TlsCookieStreamExperiment>,
            &["tls-cookie-until-confident"] as &[&str],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_source_serde_roundtrip() {
        for source in [
            CountSource::Analytic,
            CountSource::Empirical { keys: 1 << 18 },
        ] {
            let json = serde_json::to_string(&source).unwrap();
            let back: CountSource = serde_json::from_str(&json).unwrap();
            assert_eq!(back, source);
        }
        assert!(serde_json::from_str::<CountSource>("{\"kind\":\"vibes\"}").is_err());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("LAPTOP"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("full"), Some(Scale::Extended));
        assert_eq!(Scale::parse("nonsense"), None);
        // Canonical names parse back to themselves.
        for scale in Scale::ALL {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
    }
}
