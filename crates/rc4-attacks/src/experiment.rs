//! The [`Experiment`] trait: the uniform contract every paper experiment —
//! bias tables, recovery figures and the end-to-end attacks — implements.
//!
//! An experiment is a *stateful config plus a pure runner*: the instance owns
//! a serde-roundtrippable configuration with per-[`Scale`] defaults, and
//! [`Experiment::run`] consumes an [`ExperimentContext`] (seed, workers,
//! progress sink, cancellation) to produce an
//! [`crate::report::ExperimentReport`]. The trait is object-safe so the
//! [`crate::registry::Registry`] can hold heterogeneous experiments behind
//! `Box<dyn Experiment>` and drivers like `repro` need no per-experiment code.
//!
//! Implementing a custom experiment takes ~10 lines plus a config struct; see
//! the registry documentation and README for a complete example.

use serde::{Deserialize, Serialize, Value};

use crate::{
    context::ExperimentContext, experiments::Scale, report::ExperimentReport, ExperimentError,
};

/// A runnable, configurable reproduction experiment.
///
/// # Contract
///
/// * `name()` is the stable registry identifier (also the CLI name); it must
///   be unique within a registry and should match the paper artefact
///   (`"fig7"`, `"table1"`, `"tkip-attack"`, ...).
/// * The configuration exposed through [`Experiment::config_value`] /
///   [`Experiment::set_config_value`] must roundtrip unchanged through JSON.
/// * [`Experiment::apply_scale`] resets the configuration to the preset for
///   that scale (it does not merge with previous overrides).
/// * [`Experiment::run`] must be deterministic for a fixed configuration and
///   context seed, derive all randomness via
///   [`ExperimentContext::mix_seed`], honour
///   [`ExperimentContext::checkpoint`] in its hot loops, and leave `self`
///   unchanged (it takes `&self`).
pub trait Experiment: Send {
    /// Stable registry/CLI name.
    fn name(&self) -> &'static str;

    /// One-line human-readable description (shown by `repro list`).
    fn summary(&self) -> &'static str;

    /// Resets the configuration to the preset for `scale`.
    fn apply_scale(&mut self, scale: Scale);

    /// The current configuration as a serde value tree.
    fn config_value(&self) -> Value;

    /// Replaces the configuration from a serde value tree.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidConfig`] when the value does not
    /// deserialize into this experiment's config type.
    fn set_config_value(&mut self, value: &Value) -> Result<(), ExperimentError>;

    /// Executes the experiment under `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Cancelled`] when the context's flag was
    /// raised mid-run, and experiment-specific errors otherwise.
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError>;

    /// [`Experiment::run`] wrapped in an `experiment.run` trace span and the
    /// `experiment.runs` counter (provided). Drivers call this so every
    /// execution shows up in traces and metrics; both are no-ops unless
    /// observability is enabled, so results are unchanged either way.
    ///
    /// # Errors
    ///
    /// Exactly [`Experiment::run`]'s errors.
    fn run_observed(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
        let _span =
            rc4_obs::Span::enter_with("experiment.run", rc4_obs::kv! { "name" => self.name() });
        rc4_obs::metrics::counter_add("experiment.runs", 1);
        self.run(ctx)
    }

    /// The current configuration as pretty JSON (provided).
    fn config_json(&self) -> String {
        serde_json::to_string_pretty(&self.config_value())
            .expect("config value trees always serialize")
    }

    /// Replaces the configuration from a JSON string (provided).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidConfig`] on parse or shape errors.
    fn set_config_json(&mut self, json: &str) -> Result<(), ExperimentError> {
        let value: Value = serde_json::from_str(json)
            .map_err(|e| ExperimentError::InvalidConfig(format!("config JSON: {e}")))?;
        self.set_config_value(&value)
    }
}

/// Deserializes a typed config from a value tree with a uniform error shape —
/// the shared body of every `set_config_value` implementation.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidConfig`] naming `experiment` when the
/// value does not match `C`.
pub fn config_from_value<C: Deserialize>(
    experiment: &str,
    value: &Value,
) -> Result<C, ExperimentError> {
    C::from_value(value)
        .map_err(|e| ExperimentError::InvalidConfig(format!("{experiment} config: {e}")))
}

/// Serializes a typed config into a value tree — the shared body of every
/// `config_value` implementation.
pub fn config_to_value<C: Serialize>(config: &C) -> Value {
    config.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal experiment used to exercise the provided JSON methods.
    struct Doubler {
        config: DoublerConfig,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct DoublerConfig {
        n: u64,
    }

    impl Experiment for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn summary(&self) -> &'static str {
            "doubles n"
        }
        fn apply_scale(&mut self, scale: Scale) {
            self.config.n = match scale {
                Scale::Quick => 1,
                Scale::Laptop => 10,
                Scale::Extended => 100,
            };
        }
        fn config_value(&self) -> Value {
            config_to_value(&self.config)
        }
        fn set_config_value(&mut self, value: &Value) -> Result<(), ExperimentError> {
            self.config = config_from_value(self.name(), value)?;
            Ok(())
        }
        fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
            ctx.checkpoint()?;
            let mut report = ExperimentReport::new("doubler", "test", &["2n"]);
            report.push_row(&[(self.config.n * 2).to_string()]);
            Ok(report)
        }
    }

    #[test]
    fn json_config_roundtrip_and_run() {
        let mut e = Doubler {
            config: DoublerConfig { n: 3 },
        };
        let json = e.config_json();
        e.apply_scale(Scale::Extended);
        assert_eq!(e.config.n, 100);
        e.set_config_json(&json).unwrap();
        assert_eq!(e.config.n, 3);
        assert!(e.set_config_json("{\"n\": \"not a number\"}").is_err());
        assert!(e.set_config_json("not json").is_err());

        let report = e.run(&ExperimentContext::new()).unwrap();
        assert_eq!(report.rows[0].cells[0], "6");

        let cancelled = ExperimentContext::new().with_cancel({
            let h = crate::context::CancelHandle::new();
            h.cancel();
            h
        });
        assert_eq!(e.run(&cancelled), Err(ExperimentError::Cancelled));
    }
}
