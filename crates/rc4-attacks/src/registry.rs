//! The experiment registry: one catalogue for every figure, table and
//! end-to-end attack of the reproduction.
//!
//! A [`Registry`] maps stable experiment names to factories producing boxed
//! [`Experiment`]s. Drivers iterate it instead of hardcoding experiment
//! lists: `repro list` prints it, `repro run all` walks it in registration
//! order, and unknown-name errors quote it. [`Registry::with_defaults`]
//! registers the full paper pipeline (11 figure/table experiments plus the
//! `tkip-attack` and `tls-cookie` end-to-end attacks); [`Registry::register`]
//! adds custom experiments — see the README for a complete example.

use crate::{experiment::Experiment, ExperimentError};

/// Factory producing a fresh experiment instance (with its `Laptop`-scale
/// default configuration; drivers call `apply_scale` afterwards).
pub type ExperimentFactory = fn() -> Box<dyn Experiment>;

/// One registered experiment.
pub struct RegistryEntry {
    name: &'static str,
    summary: &'static str,
    aliases: &'static [&'static str],
    factory: ExperimentFactory,
}

impl RegistryEntry {
    /// Stable registry/CLI name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Alternative lookup names (e.g. `fig9` for the `fig8` experiment, whose
    /// report carries both figures).
    pub fn aliases(&self) -> &'static [&'static str] {
        self.aliases
    }

    /// Instantiates the experiment.
    pub fn create(&self) -> Box<dyn Experiment> {
        (self.factory)()
    }
}

impl core::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .finish_non_exhaustive()
    }
}

/// An ordered, name-addressable catalogue of experiments.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the registry of all built-in experiments, in canonical
    /// `run all` order.
    pub fn with_defaults() -> Self {
        let mut registry = Self::new();
        for (factory, aliases) in crate::experiments::default_experiments() {
            registry
                .register_with_aliases(factory, aliases)
                .expect("built-in experiment names are unique");
        }
        registry
    }

    /// Registers an experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidConfig`] if the factory's name (or
    /// one of its aliases) is already taken.
    pub fn register(&mut self, factory: ExperimentFactory) -> Result<(), ExperimentError> {
        self.register_with_aliases(factory, &[])
    }

    /// Registers an experiment reachable under extra alias names.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidConfig`] on any name collision.
    pub fn register_with_aliases(
        &mut self,
        factory: ExperimentFactory,
        aliases: &'static [&'static str],
    ) -> Result<(), ExperimentError> {
        let instance = factory();
        let name = instance.name();
        let summary = instance.summary();
        for candidate in std::iter::once(name).chain(aliases.iter().copied()) {
            if self.find(candidate).is_some() {
                return Err(ExperimentError::InvalidConfig(format!(
                    "experiment name '{candidate}' is already registered"
                )));
            }
        }
        self.entries.push(RegistryEntry {
            name,
            summary,
            aliases,
            factory,
        });
        Ok(())
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// The primary names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by name or alias (case-sensitive).
    pub fn find(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
    }

    /// Instantiates the experiment registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::UnknownExperiment`] carrying the full list
    /// of registered names, so callers (and CLI error messages) never go
    /// stale.
    pub fn create(&self, name: &str) -> Result<Box<dyn Experiment>, ExperimentError> {
        self.find(name).map(RegistryEntry::create).ok_or_else(|| {
            ExperimentError::UnknownExperiment {
                name: name.to_string(),
                registered: self.names().iter().map(|n| n.to_string()).collect(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        context::ExperimentContext, experiments::Scale, report::ExperimentReport, ExperimentError,
    };
    use serde::Value;

    struct Probe;

    impl Experiment for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn summary(&self) -> &'static str {
            "registry test probe"
        }
        fn apply_scale(&mut self, _scale: Scale) {}
        fn config_value(&self) -> Value {
            Value::Object(vec![])
        }
        fn set_config_value(&mut self, _value: &Value) -> Result<(), ExperimentError> {
            Ok(())
        }
        fn run(&self, _ctx: &ExperimentContext) -> Result<ExperimentReport, ExperimentError> {
            Ok(ExperimentReport::new("probe", "probe", &[]))
        }
    }

    fn probe_factory() -> Box<dyn Experiment> {
        Box::new(Probe)
    }

    #[test]
    fn register_lookup_and_duplicate_rejection() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.register_with_aliases(probe_factory, &["sonde"]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.names(), vec!["probe"]);
        assert!(r.find("probe").is_some());
        assert!(r.find("sonde").is_some());
        assert!(r.find("nope").is_none());
        assert!(r.register(probe_factory).is_err());

        let e = r.create("probe").unwrap();
        assert_eq!(e.name(), "probe");
        let Err(err) = r.create("nope") else {
            panic!("lookup of an unregistered name should fail")
        };
        match err {
            ExperimentError::UnknownExperiment { name, registered } => {
                assert_eq!(name, "nope");
                assert_eq!(registered, vec!["probe".to_string()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn default_registry_covers_the_paper_pipeline() {
        let r = Registry::with_defaults();
        assert!(
            r.len() >= 13,
            "expected the 11 figure/table experiments plus 2 attacks, got {:?}",
            r.names()
        );
        for name in [
            "headline",
            "table1",
            "fig4",
            "table2",
            "eq345",
            "fig5",
            "fig6",
            "longterm",
            "fig7",
            "fig8",
            "fig10",
            "tkip-attack",
            "tls-cookie",
        ] {
            assert!(r.find(name).is_some(), "'{name}' missing from registry");
        }
        // The fig8 experiment also answers to the fig9 alias (one report
        // carries both figures).
        assert_eq!(r.find("fig9").unwrap().name(), "fig8");
        // Every entry instantiates with a matching name and a non-empty summary.
        for entry in r.entries() {
            let instance = entry.create();
            assert_eq!(instance.name(), entry.name());
            assert!(!entry.summary().is_empty());
        }
    }
}
