//! Experiment report structures and plain-text rendering.
//!
//! Every experiment produces an [`ExperimentReport`]: an identifier matching
//! the paper's table/figure number, a set of named columns and one row per
//! measured configuration (curve point, table row, ...). The `repro` binary
//! renders reports as aligned text tables and can serialize them to JSON so
//! `EXPERIMENTS.md` numbers are regenerable.

use serde::{Deserialize, Serialize};

/// One row of an experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// Cell values, one per column.
    pub cells: Vec<String>,
}

impl ReportRow {
    /// Builds a row from anything displayable.
    pub fn new<S: ToString>(cells: &[S]) -> Self {
        Self {
            cells: cells.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Identifier matching the paper, e.g. `"fig7"` or `"table1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Free-form notes (scale used, substitutions, paper-reported values).
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<ReportRow>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            notes: Vec::new(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of columns.
    pub fn push_row<S: ToString>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "report row width must match the column count"
        );
        self.rows.push(ReportRow::new(cells));
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.cells.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for note in &self.notes {
            out.push_str(&format!("   note: {note}\n"));
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&format!("   {}\n", header.join("  ")));
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("   {}\n", underline.join("  ")));
        for row in &self.rows {
            let cells: Vec<String> = row
                .cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&format!("   {}\n", cells.join("  ")));
        }
        out
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// Formats a probability as `2^x` with four decimals, the notation the paper uses.
pub fn format_pow2(p: f64) -> String {
    if p <= 0.0 {
        return "0".to_string();
    }
    format!("2^{:.4}", p.log2())
}

/// Formats a success rate as a percentage.
pub fn format_percent(rate: f64) -> String {
    format!("{:.1}%", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rendering_aligns_columns() {
        let mut r = ExperimentReport::new("fig7", "Recovery rate", &["ciphertexts", "rate"]);
        r.note("sampled mode");
        r.push_row(&["2^27", "12.5%"]);
        r.push_row(&["2^31", "100.0%"]);
        let text = r.render();
        assert!(text.contains("fig7"));
        assert!(text.contains("note: sampled mode"));
        assert!(text.contains("2^27"));
        assert!(text.contains("100.0%"));
        // JSON roundtrip.
        let json = r.to_json();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut r = ExperimentReport::new("x", "y", &["a", "b"]);
        r.push_row(&["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_pow2(1.0 / 65536.0), "2^-16.0000");
        assert_eq!(format_pow2(0.0), "0");
        assert_eq!(format_percent(0.944), "94.4%");
    }
}
