//! The run context every experiment executes under.
//!
//! [`ExperimentContext`] is the one argument of [`crate::Experiment::run`]: it
//! carries the global seed and worker count, a progress/event sink, and a
//! cooperative cancellation flag. Experiments must
//!
//! * derive every RNG seed through [`ExperimentContext::mix_seed`] so a
//!   `--seed` override reaches all of them deterministically,
//! * use [`ExperimentContext::workers`] for dataset-generation parallelism,
//! * call [`ExperimentContext::checkpoint`] inside their hot loops (per trial
//!   or per sweep point) and pass [`ExperimentContext::cancel_flag`] into the
//!   `rc4-stats` worker pool so a raised flag aborts within milliseconds, and
//! * report coarse progress through [`ExperimentContext::emit`].
//!
//! The default context (seed mix `0`, one worker, no sink, never cancelled)
//! reproduces the historical behaviour of the standalone experiment functions
//! bit for bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rc4_stats::{GenerationConfig, StorableDataset};
use rc4_store::{DatasetCache, SingleFlight};

use crate::ExperimentError;

/// A coarse progress event emitted by a running experiment.
///
/// Events are advisory: sinks must not influence the experiment's results
/// (reports are byte-identical whatever sink is installed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent<'a> {
    /// The experiment began executing.
    Started {
        /// Registry name of the experiment.
        experiment: &'a str,
    },
    /// `completed` of `total` units (sweep points, trials, datasets) are done.
    Progress {
        /// Registry name of the experiment.
        experiment: &'a str,
        /// Units finished so far.
        completed: u64,
        /// Total units when known in advance; 0 means the total is unknown
        /// (e.g. a streaming loop whose whole point is to stop early).
        total: u64,
        /// What one unit is ("point", "trial", "dataset", ...).
        unit: &'a str,
    },
    /// The experiment finished (successfully or not — errors surface through
    /// the `run` return value, not through the sink).
    Finished {
        /// Registry name of the experiment.
        experiment: &'a str,
    },
    /// A dataset-cache interaction: `hit` (generation skipped entirely),
    /// `miss` (about to generate) or `stored` (fresh result persisted).
    DatasetCache {
        /// Dataset kind tag (`single`, `pairs`, `longterm`, `per-tsc`).
        kind: &'a str,
        /// `"hit"`, `"miss"` or `"stored"`.
        outcome: &'a str,
    },
}

impl ProgressEvent<'_> {
    /// One-line human-readable rendering, shared by the stderr and memory sinks.
    pub fn render(&self) -> String {
        match self {
            ProgressEvent::Started { experiment } => format!("{experiment}: started"),
            ProgressEvent::Progress {
                experiment,
                completed,
                total,
                unit,
            } => {
                if *total == 0 {
                    // Total 0 means "unknown in advance" (e.g. a streaming
                    // capture loop that stops early); render without the
                    // meaningless "/0" denominator.
                    format!("{experiment}: {completed} {unit}s")
                } else {
                    format!("{experiment}: {completed}/{total} {unit}s")
                }
            }
            ProgressEvent::Finished { experiment } => format!("{experiment}: finished"),
            ProgressEvent::DatasetCache { kind, outcome } => {
                format!("dataset cache {outcome} ({kind})")
            }
        }
    }
}

/// Receiver of [`ProgressEvent`]s; installed on a context via
/// [`ExperimentContext::with_sink`].
pub trait EventSink: Send + Sync {
    /// Called synchronously from the experiment's thread for each event.
    fn on_event(&self, event: &ProgressEvent<'_>);
}

/// Discards all events (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&self, _event: &ProgressEvent<'_>) {}
}

/// Prints each event as one `stderr` line, prefixed so driver output and
/// report text on `stdout` stay machine-parseable.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        eprintln!("repro: {}", event.render());
    }
}

/// Records rendered events in memory; used by tests to assert that
/// experiments actually report progress.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered events received so far.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().expect("sink mutex poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        self.events
            .lock()
            .expect("sink mutex poisoned")
            .push(event.render());
    }
}

/// Shared, clonable handle to an experiment run's cancellation flag.
///
/// Raise it from any thread (a signal handler, a UI, a timeout) and every
/// cooperative loop in the run — the `rc4-stats` worker pool and the
/// fig7/fig8/fig10 trial loops — stops at its next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Creates a fresh, unraised handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; idempotent and irrevocable for the run it is wired to.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The underlying atomic, for APIs (like
    /// `rc4_stats::worker::generate_with_cancel`) that poll a raw flag.
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Upper bound on [`ProgressEvent::Progress`] emissions per second per
/// reporter. Events are advisory, so dropping intermediate ones loses
/// nothing; without the cap, parallel trial loops at high `--workers` emit
/// one event per trial and drown stderr (and any recording sink).
pub const PROGRESS_EVENTS_PER_SEC: u32 = 10;

/// Aggregated, rate-limited progress reporting for one experiment hot loop;
/// created by [`ExperimentContext::progress`] and safe to tick from parallel
/// workers.
#[derive(Debug)]
pub struct ProgressReporter<'c> {
    ctx: &'c ExperimentContext,
    experiment: &'static str,
    unit: &'static str,
    throttle: rc4_exec::ProgressThrottle,
}

impl ProgressReporter<'_> {
    /// Records `n` finished units, emitting a throttled
    /// [`ProgressEvent::Progress`] when due.
    pub fn tick(&self, n: u64) {
        self.throttle.tick(n, |completed, total| {
            self.ctx.emit(ProgressEvent::Progress {
                experiment: self.experiment,
                completed,
                total,
                unit: self.unit,
            });
        });
    }
}

/// Everything an [`crate::Experiment`] needs from its environment.
#[derive(Clone)]
pub struct ExperimentContext {
    seed: u64,
    workers: usize,
    sink: Arc<dyn EventSink>,
    cancel: CancelHandle,
    cache: Option<Arc<DatasetCache>>,
    flights: Option<Arc<SingleFlight>>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            seed: 0,
            workers: 1,
            sink: Arc::new(NullSink),
            cancel: CancelHandle::new(),
            cache: None,
            flights: None,
        }
    }
}

impl core::fmt::Debug for ExperimentContext {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ExperimentContext")
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .field("cancelled", &self.cancel.is_cancelled())
            .finish_non_exhaustive()
    }
}

impl ExperimentContext {
    /// The default context: seed mix `0`, one worker, no sink, never
    /// cancelled — exactly the historical standalone-function behaviour.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the global seed, XOR-mixed into every experiment's base seed by
    /// [`ExperimentContext::mix_seed`]. Seed `0` (the default) leaves each
    /// experiment's documented base seed untouched.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count used for dataset generation (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Installs a progress sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Wires the context to an externally-owned cancellation handle.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelHandle) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a dataset cache directory (created if absent). Experiments
    /// that generate keystream datasets will load matching complete datasets
    /// from it instead of regenerating, and persist fresh generations into it.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Component`] when the directory cannot be
    /// created.
    pub fn with_cache_dir(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Self, ExperimentError> {
        self.cache = Some(Arc::new(DatasetCache::open(dir)?));
        Ok(self)
    }

    /// Attaches an already-open dataset cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<DatasetCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a shared single-flight table coordinating concurrent
    /// [`ExperimentContext::load_or_generate`] calls *across contexts* that
    /// share the same dataset cache. With one attached, concurrent callers
    /// missing on the same cache key serialize: the first generates and
    /// stores, the rest wait and then load the stored entry — exactly one
    /// generation per key however many clients ask for it.
    #[must_use]
    pub fn with_flights(mut self, flights: Arc<SingleFlight>) -> Self {
        self.flights = Some(flights);
        self
    }

    /// The attached dataset cache, if any.
    pub fn cache(&self) -> Option<&DatasetCache> {
        self.cache.as_deref()
    }

    /// The global seed mix.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads available for dataset generation (always ≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Derives the effective seed for a component whose documented default
    /// seed is `base`. XOR keeps the default run (`seed == 0`) bit-identical
    /// to the historical outputs while any other global seed shifts every
    /// component deterministically.
    pub fn mix_seed(&self, base: u64) -> u64 {
        base ^ self.seed
    }

    /// A clone of the run's cancellation handle.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// The raw cancellation flag, for `rc4_stats::worker::generate_with_cancel`.
    pub fn cancel_flag(&self) -> &AtomicBool {
        self.cancel.as_atomic()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Hot-loop cancellation checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Cancelled`] once the flag has been raised.
    pub fn checkpoint(&self) -> Result<(), ExperimentError> {
        if self.is_cancelled() {
            Err(ExperimentError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Emits a progress event to the installed sink.
    pub fn emit(&self, event: ProgressEvent<'_>) {
        self.sink.on_event(&event);
    }

    /// An executor carrying the context's worker budget and cancellation
    /// flag — the one way experiments are expected to go parallel, so every
    /// parallel stage honours `--workers` and aborts on the shared token.
    pub fn executor(&self) -> rc4_exec::Executor<'_> {
        rc4_exec::Executor::new(self.workers).with_cancel(Some(self.cancel_flag()))
    }

    /// A throttled progress reporter for a hot loop of `total` units: ticks
    /// from any thread are aggregated and forwarded to the sink as
    /// [`ProgressEvent::Progress`] events, rate-limited to
    /// [`PROGRESS_EVENTS_PER_SEC`] so parallel workers cannot flood the sink
    /// (the first and the completing tick always get through).
    pub fn progress(
        &self,
        experiment: &'static str,
        total: u64,
        unit: &'static str,
    ) -> ProgressReporter<'_> {
        ProgressReporter {
            ctx: self,
            experiment,
            unit,
            throttle: rc4_exec::ProgressThrottle::new(total, PROGRESS_EVENTS_PER_SEC),
        }
    }

    /// Load-or-generate for keystream datasets: the shared cache protocol of
    /// every dataset-backed experiment.
    ///
    /// With no cache attached this simply runs `fill` on `empty` — exactly
    /// the historical behaviour, bit for bit. With a cache attached, a
    /// complete dataset matching `(kind, shape of empty, config)` is loaded
    /// and returned *without any generation work*; on a miss, `fill`
    /// generates into `empty` and the result is persisted for the next run.
    /// Because cache entries are validated against the full configuration and
    /// the store reproduces generation exactly (see `rc4-store`), cached and
    /// fresh runs produce identical experiment output.
    ///
    /// When a [`SingleFlight`] table is attached (via
    /// [`ExperimentContext::with_flights`]) alongside the cache, the whole
    /// check-generate-store sequence runs inside a per-key critical section:
    /// concurrent callers on the same `(kind, shape, config)` wait for the
    /// first one to store, then load the cached entry — exactly one
    /// generation per key across every context sharing the table.
    ///
    /// # Errors
    ///
    /// Propagates `fill`'s error, and cache I/O / corruption errors as
    /// [`ExperimentError::Component`] (a damaged matching cache entry is
    /// reported, never silently regenerated).
    pub fn load_or_generate<D, F>(
        &self,
        mut empty: D,
        config: &GenerationConfig,
        fill: F,
    ) -> Result<D, ExperimentError>
    where
        D: StorableDataset,
        F: FnOnce(&mut D) -> Result<(), ExperimentError>,
    {
        let _span = rc4_obs::Span::enter_with(
            "store.load_or_generate",
            rc4_obs::kv! {
                "kind" => D::kind(),
                "keys" => config.keys,
            },
        );
        let Some(cache) = self.cache.as_deref() else {
            fill(&mut empty)?;
            return Ok(empty);
        };
        let shape = empty.shape_params();
        // Hold the key's flight for the whole check-generate-store sequence
        // so concurrent misses on the same key collapse into one generation.
        // The guard's Drop releases the key even if generation fails.
        let _flight = self
            .flights
            .as_deref()
            .map(|flights| flights.begin(&DatasetCache::cache_key(D::kind(), &shape, config)));
        if let Some(hit) = cache.load::<D>(&shape, config)? {
            self.emit(ProgressEvent::DatasetCache {
                kind: D::kind(),
                outcome: "hit",
            });
            return Ok(hit);
        }
        self.emit(ProgressEvent::DatasetCache {
            kind: D::kind(),
            outcome: "miss",
        });
        fill(&mut empty)?;
        cache.store(&empty, config)?;
        self.emit(ProgressEvent::DatasetCache {
            kind: D::kind(),
            outcome: "stored",
        });
        Ok(empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_matches_historical_behaviour() {
        let ctx = ExperimentContext::new();
        assert_eq!(ctx.seed(), 0);
        assert_eq!(ctx.workers(), 1);
        assert_eq!(ctx.mix_seed(0xB1A5), 0xB1A5);
        assert!(!ctx.is_cancelled());
        assert!(ctx.checkpoint().is_ok());
    }

    #[test]
    fn seed_mixing_and_worker_clamp() {
        let ctx = ExperimentContext::new().with_seed(0xFF).with_workers(0);
        assert_eq!(ctx.mix_seed(0x0F), 0xF0);
        assert_eq!(ctx.workers(), 1);
    }

    #[test]
    fn cancellation_propagates_through_checkpoint() {
        let handle = CancelHandle::new();
        let ctx = ExperimentContext::new().with_cancel(handle.clone());
        assert!(ctx.checkpoint().is_ok());
        handle.cancel();
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.checkpoint(), Err(ExperimentError::Cancelled));
        // The raw flag view agrees.
        assert!(ctx.cancel_flag().load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn load_or_generate_without_cache_matches_direct_generation() {
        use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig};
        let ctx = ExperimentContext::new();
        let config = GenerationConfig::with_keys(300).seed(3);
        let via_ctx = ctx
            .load_or_generate(SingleByteDataset::new(4), &config, |ds| {
                generate(ds, &config)?;
                Ok(())
            })
            .unwrap();
        let mut direct = SingleByteDataset::new(4);
        generate(&mut direct, &config).unwrap();
        for r in 1..=4 {
            assert_eq!(via_ctx.counts_at(r), direct.counts_at(r));
        }
    }

    #[test]
    fn load_or_generate_misses_then_hits_and_reports_events() {
        use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig};
        let dir =
            std::env::temp_dir().join(format!("rc4-attacks-ctx-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = Arc::new(MemorySink::new());
        let ctx = ExperimentContext::new()
            .with_sink(sink.clone())
            .with_cache_dir(&dir)
            .unwrap();
        let config = GenerationConfig::with_keys(200).seed(7);
        let fresh = ctx
            .load_or_generate(SingleByteDataset::new(3), &config, |ds| {
                generate(ds, &config)?;
                Ok(())
            })
            .unwrap();
        // Second call must not invoke the generator at all.
        let cached = ctx
            .load_or_generate(SingleByteDataset::new(3), &config, |_| {
                panic!("cache hit must skip generation")
            })
            .unwrap();
        for r in 1..=3 {
            assert_eq!(cached.counts_at(r), fresh.counts_at(r));
        }
        assert_eq!(
            sink.events(),
            vec![
                "dataset cache miss (single)",
                "dataset cache stored (single)",
                "dataset cache hit (single)"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_load_or_generate_same_key_generates_exactly_once() {
        use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let dir = std::env::temp_dir().join(format!(
            "rc4-attacks-singleflight-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(DatasetCache::open(&dir).unwrap());
        let flights = Arc::new(SingleFlight::new());
        let generations = Arc::new(AtomicUsize::new(0));
        let config = GenerationConfig::with_keys(400).seed(11);

        // All threads race load_or_generate on the SAME (kind, shape, config)
        // key through one shared cache + flight table, each from its own
        // context (the server shape: one context per job).
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let flights = Arc::clone(&flights);
                let generations = Arc::clone(&generations);
                std::thread::spawn(move || {
                    let ctx = ExperimentContext::new()
                        .with_cache(cache)
                        .with_flights(flights);
                    ctx.load_or_generate(SingleByteDataset::new(4), &config, |ds| {
                        generations.fetch_add(1, Ordering::SeqCst);
                        generate(ds, &config)?;
                        Ok(())
                    })
                    .unwrap()
                })
            })
            .collect();
        let datasets: Vec<SingleByteDataset> = handles
            .into_iter()
            .map(|h| h.join().expect("racing thread panicked"))
            .collect();

        assert_eq!(
            generations.load(Ordering::SeqCst),
            1,
            "single-flight must collapse concurrent misses into one generation"
        );
        // Every caller sees byte-identical counts.
        let reference = &datasets[0];
        for ds in &datasets[1..] {
            for r in 1..=4 {
                assert_eq!(ds.counts_at(r), reference.counts_at(r));
            }
        }
        // Exactly one flight led; the rest waited (or arrived after the
        // store, which also counts as a begun flight that then hit).
        let stats = flights.stats();
        assert_eq!(stats.begun, 6);
        assert_eq!(stats.in_flight, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn executor_carries_workers_and_cancellation() {
        let handle = CancelHandle::new();
        let ctx = ExperimentContext::new()
            .with_workers(3)
            .with_cancel(handle.clone());
        let exec = ctx.executor();
        assert_eq!(exec.workers(), 3);
        assert!(!exec.is_cancelled());
        handle.cancel();
        assert!(exec.is_cancelled());
        assert_eq!(
            exec.map(vec![1, 2, 3], |_, x| Ok::<_, ()>(x)),
            Err(rc4_exec::ExecError::Cancelled)
        );
    }

    #[test]
    fn progress_reporter_throttles_and_reports_completion() {
        let sink = Arc::new(MemorySink::new());
        let ctx = ExperimentContext::new().with_sink(sink.clone());
        let reporter = ctx.progress("x", 5_000, "trial");
        for _ in 0..5_000 {
            reporter.tick(1);
        }
        let events = sink.events();
        assert_eq!(events.first().map(String::as_str), Some("x: 1/5000 trials"));
        assert_eq!(
            events.last().map(String::as_str),
            Some("x: 5000/5000 trials")
        );
        // 5000 ticks in well under a second: the rate limit must have
        // swallowed almost everything in between.
        assert!(events.len() < 100, "{} events got through", events.len());
    }

    #[test]
    fn memory_sink_records_rendered_events() {
        let sink = Arc::new(MemorySink::new());
        let ctx = ExperimentContext::new().with_sink(sink.clone());
        ctx.emit(ProgressEvent::Started { experiment: "x" });
        ctx.emit(ProgressEvent::Progress {
            experiment: "x",
            completed: 1,
            total: 4,
            unit: "point",
        });
        ctx.emit(ProgressEvent::Finished { experiment: "x" });
        assert_eq!(
            sink.events(),
            vec!["x: started", "x: 1/4 points", "x: finished"]
        );
    }

    #[test]
    fn unknown_total_renders_without_denominator() {
        // Total 0 means "unknown in advance" — "512/0 captures" would be
        // nonsense, so the rendering drops the denominator entirely.
        let event = ProgressEvent::Progress {
            experiment: "tls-cookie-stream",
            completed: 512,
            total: 0,
            unit: "capture",
        };
        assert_eq!(event.render(), "tls-cookie-stream: 512 captures");
    }
}
