//! The run context every experiment executes under.
//!
//! [`ExperimentContext`] is the one argument of [`crate::Experiment::run`]: it
//! carries the global seed and worker count, a progress/event sink, and a
//! cooperative cancellation flag. Experiments must
//!
//! * derive every RNG seed through [`ExperimentContext::mix_seed`] so a
//!   `--seed` override reaches all of them deterministically,
//! * use [`ExperimentContext::workers`] for dataset-generation parallelism,
//! * call [`ExperimentContext::checkpoint`] inside their hot loops (per trial
//!   or per sweep point) and pass [`ExperimentContext::cancel_flag`] into the
//!   `rc4-stats` worker pool so a raised flag aborts within milliseconds, and
//! * report coarse progress through [`ExperimentContext::emit`].
//!
//! The default context (seed mix `0`, one worker, no sink, never cancelled)
//! reproduces the historical behaviour of the standalone experiment functions
//! bit for bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::ExperimentError;

/// A coarse progress event emitted by a running experiment.
///
/// Events are advisory: sinks must not influence the experiment's results
/// (reports are byte-identical whatever sink is installed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent<'a> {
    /// The experiment began executing.
    Started {
        /// Registry name of the experiment.
        experiment: &'a str,
    },
    /// `completed` of `total` units (sweep points, trials, datasets) are done.
    Progress {
        /// Registry name of the experiment.
        experiment: &'a str,
        /// Units finished so far.
        completed: u64,
        /// Total units, when known in advance.
        total: u64,
        /// What one unit is ("point", "trial", "dataset", ...).
        unit: &'a str,
    },
    /// The experiment finished (successfully or not — errors surface through
    /// the `run` return value, not through the sink).
    Finished {
        /// Registry name of the experiment.
        experiment: &'a str,
    },
}

impl ProgressEvent<'_> {
    /// One-line human-readable rendering, shared by the stderr and memory sinks.
    pub fn render(&self) -> String {
        match self {
            ProgressEvent::Started { experiment } => format!("{experiment}: started"),
            ProgressEvent::Progress {
                experiment,
                completed,
                total,
                unit,
            } => format!("{experiment}: {completed}/{total} {unit}s"),
            ProgressEvent::Finished { experiment } => format!("{experiment}: finished"),
        }
    }
}

/// Receiver of [`ProgressEvent`]s; installed on a context via
/// [`ExperimentContext::with_sink`].
pub trait EventSink: Send + Sync {
    /// Called synchronously from the experiment's thread for each event.
    fn on_event(&self, event: &ProgressEvent<'_>);
}

/// Discards all events (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&self, _event: &ProgressEvent<'_>) {}
}

/// Prints each event as one `stderr` line, prefixed so driver output and
/// report text on `stdout` stay machine-parseable.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        eprintln!("repro: {}", event.render());
    }
}

/// Records rendered events in memory; used by tests to assert that
/// experiments actually report progress.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rendered events received so far.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().expect("sink mutex poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        self.events
            .lock()
            .expect("sink mutex poisoned")
            .push(event.render());
    }
}

/// Shared, clonable handle to an experiment run's cancellation flag.
///
/// Raise it from any thread (a signal handler, a UI, a timeout) and every
/// cooperative loop in the run — the `rc4-stats` worker pool and the
/// fig7/fig8/fig10 trial loops — stops at its next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Creates a fresh, unraised handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; idempotent and irrevocable for the run it is wired to.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The underlying atomic, for APIs (like
    /// `rc4_stats::worker::generate_with_cancel`) that poll a raw flag.
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Everything an [`crate::Experiment`] needs from its environment.
#[derive(Clone)]
pub struct ExperimentContext {
    seed: u64,
    workers: usize,
    sink: Arc<dyn EventSink>,
    cancel: CancelHandle,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            seed: 0,
            workers: 1,
            sink: Arc::new(NullSink),
            cancel: CancelHandle::new(),
        }
    }
}

impl core::fmt::Debug for ExperimentContext {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ExperimentContext")
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .field("cancelled", &self.cancel.is_cancelled())
            .finish_non_exhaustive()
    }
}

impl ExperimentContext {
    /// The default context: seed mix `0`, one worker, no sink, never
    /// cancelled — exactly the historical standalone-function behaviour.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the global seed, XOR-mixed into every experiment's base seed by
    /// [`ExperimentContext::mix_seed`]. Seed `0` (the default) leaves each
    /// experiment's documented base seed untouched.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count used for dataset generation (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Installs a progress sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Wires the context to an externally-owned cancellation handle.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelHandle) -> Self {
        self.cancel = cancel;
        self
    }

    /// The global seed mix.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads available for dataset generation (always ≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Derives the effective seed for a component whose documented default
    /// seed is `base`. XOR keeps the default run (`seed == 0`) bit-identical
    /// to the historical outputs while any other global seed shifts every
    /// component deterministically.
    pub fn mix_seed(&self, base: u64) -> u64 {
        base ^ self.seed
    }

    /// A clone of the run's cancellation handle.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// The raw cancellation flag, for `rc4_stats::worker::generate_with_cancel`.
    pub fn cancel_flag(&self) -> &AtomicBool {
        self.cancel.as_atomic()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Hot-loop cancellation checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Cancelled`] once the flag has been raised.
    pub fn checkpoint(&self) -> Result<(), ExperimentError> {
        if self.is_cancelled() {
            Err(ExperimentError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Emits a progress event to the installed sink.
    pub fn emit(&self, event: ProgressEvent<'_>) {
        self.sink.on_event(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_matches_historical_behaviour() {
        let ctx = ExperimentContext::new();
        assert_eq!(ctx.seed(), 0);
        assert_eq!(ctx.workers(), 1);
        assert_eq!(ctx.mix_seed(0xB1A5), 0xB1A5);
        assert!(!ctx.is_cancelled());
        assert!(ctx.checkpoint().is_ok());
    }

    #[test]
    fn seed_mixing_and_worker_clamp() {
        let ctx = ExperimentContext::new().with_seed(0xFF).with_workers(0);
        assert_eq!(ctx.mix_seed(0x0F), 0xF0);
        assert_eq!(ctx.workers(), 1);
    }

    #[test]
    fn cancellation_propagates_through_checkpoint() {
        let handle = CancelHandle::new();
        let ctx = ExperimentContext::new().with_cancel(handle.clone());
        assert!(ctx.checkpoint().is_ok());
        handle.cancel();
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.checkpoint(), Err(ExperimentError::Cancelled));
        // The raw flag view agrees.
        assert!(ctx.cancel_flag().load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn memory_sink_records_rendered_events() {
        let sink = Arc::new(MemorySink::new());
        let ctx = ExperimentContext::new().with_sink(sink.clone());
        ctx.emit(ProgressEvent::Started { experiment: "x" });
        ctx.emit(ProgressEvent::Progress {
            experiment: "x",
            completed: 1,
            total: 4,
            unit: "point",
        });
        ctx.emit(ProgressEvent::Finished { experiment: "x" });
        assert_eq!(
            sink.events(),
            vec!["x: started", "x: 1/4 points", "x: finished"]
        );
    }
}
