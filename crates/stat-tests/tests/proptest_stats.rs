//! Property-based tests for the statistical machinery.

use proptest::prelude::*;
use stat_tests::{
    chisq::{chi_squared_gof, chi_squared_uniform},
    holm::holm,
    mtest::m_test,
    proportion::proportion_test,
    special::{chi2_cdf, chi2_sf, gamma_p, gamma_q, normal_cdf, normal_sf},
};

proptest! {
    /// The special functions stay in their mathematical ranges and complements sum to one.
    #[test]
    fn special_function_ranges(x in 0.0f64..500.0, df in 1.0f64..512.0, a in 0.01f64..200.0) {
        let sf = chi2_sf(x, df);
        let cdf = chi2_cdf(x, df);
        prop_assert!((0.0..=1.0).contains(&sf));
        prop_assert!((0.0..=1.0).contains(&cdf));
        prop_assert!((sf + cdf - 1.0).abs() < 1e-9);

        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9);

        let z = (x / 50.0) - 5.0;
        prop_assert!((normal_cdf(z) + normal_sf(z) - 1.0).abs() < 1e-12);
        prop_assert!(normal_cdf(z) >= 0.0 && normal_cdf(z) <= 1.0);
    }

    /// Chi-squared goodness-of-fit: p-values are probabilities, and data drawn
    /// exactly at the expectation gives statistic zero.
    #[test]
    fn chisq_gof_properties(counts in prop::collection::vec(1u64..10_000, 2..64)) {
        let k = counts.len();
        let expected = vec![1.0 / k as f64; k];
        let r = chi_squared_gof(&counts, &expected).unwrap();
        prop_assert!(r.p_value >= 0.0 && r.p_value <= 1.0);
        prop_assert!(r.statistic >= 0.0);
        prop_assert_eq!(r.df, (k - 1) as f64);

        // Perfectly proportional counts are never rejected.
        let total: u64 = counts.iter().sum();
        let proportional: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let perfect = chi_squared_gof(&counts, &proportional).unwrap();
        prop_assert!(perfect.statistic < 1e-6);
    }

    /// The uniformity test and the M-test never disagree about which data is
    /// *obviously* fine: constant counts are accepted by both.
    #[test]
    fn uniform_counts_not_rejected(value in 100u64..5000, cells in 2usize..512) {
        let counts = vec![value; cells];
        let chi = chi_squared_uniform(&counts).unwrap();
        prop_assert!(!chi.rejects_at(0.05));
        let expected = vec![1.0 / cells as f64; cells];
        let m = m_test(&counts, &expected).unwrap();
        prop_assert!(!m.test.rejects_at(0.05));
    }

    /// Proportion tests: p-values in range, sign matches the direction of the
    /// deviation, and the relative bias matches its definition.
    #[test]
    fn proportion_test_properties(count in 0u64..100_000, trials in 1u64..100_000, p in 0.0001f64..0.9999) {
        prop_assume!(count <= trials);
        let r = proportion_test(count, trials, p).unwrap();
        prop_assert!(r.test.p_value >= 0.0 && r.test.p_value <= 1.0);
        let observed = count as f64 / trials as f64;
        prop_assert!((r.observed_p - observed).abs() < 1e-12);
        prop_assert!((r.relative_bias - (observed / p - 1.0)).abs() < 1e-9);
        if observed > p {
            prop_assert!(r.test.statistic > 0.0);
        }
        if observed < p {
            prop_assert!(r.test.statistic < 0.0);
        }
    }

    /// Holm: adjusted p-values are at least the raw ones, at most 1, and the
    /// rejection set is a subset of the raw-threshold rejections.
    #[test]
    fn holm_properties(ps in prop::collection::vec(0.0f64..1.0, 1..64), alpha in 0.001f64..0.2) {
        let outcomes = holm(&ps, alpha);
        prop_assert_eq!(outcomes.len(), ps.len());
        for o in &outcomes {
            prop_assert!(o.adjusted_p >= o.p_value - 1e-15);
            prop_assert!(o.adjusted_p <= 1.0 + 1e-15);
            if o.rejected {
                // Anything Holm rejects would also be rejected without correction.
                prop_assert!(o.p_value < alpha);
            }
        }
    }
}
