//! Two-sided proportion tests for individual keystream value (pairs).
//!
//! Once the M-test flags a byte pair as dependent, the paper drills down with
//! per-value proportion tests to determine *which* value pairs are biased and
//! in which direction, and reports the relative bias `q` from
//! `s = p (1 + q)` where `p` is the single-byte-based expectation and `s` the
//! observed pair probability.

use crate::{special::normal_two_sided, StatError, TestResult};

/// Direction of a detected bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasSign {
    /// The value occurs more often than expected.
    Positive,
    /// The value occurs less often than expected.
    Negative,
}

/// Result of a proportion test on one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionResult {
    /// Statistic, p-value and (degenerate) df.
    pub test: TestResult,
    /// Observed probability `count / trials`.
    pub observed_p: f64,
    /// Expected probability under the null hypothesis.
    pub expected_p: f64,
    /// Relative bias `q` such that `observed = expected * (1 + q)`.
    pub relative_bias: f64,
    /// Sign of the bias.
    pub sign: BiasSign,
}

/// Two-sided one-sample proportion test (normal approximation).
///
/// Tests whether observing `count` successes in `trials` Bernoulli trials is
/// consistent with success probability `expected_p`.
///
/// # Errors
///
/// * [`StatError::EmptyObservations`] when `trials == 0`.
/// * [`StatError::Domain`] when `expected_p` is not strictly inside `(0, 1)`
///   or `count > trials`.
///
/// # Examples
///
/// ```
/// use stat_tests::proportion::proportion_test;
///
/// // Mantin-Shamir: Z_2 = 0 with probability ~2/256 instead of 1/256.
/// let trials = 1u64 << 24;
/// let count = (trials as f64 * 2.0 / 256.0) as u64;
/// let r = proportion_test(count, trials, 1.0 / 256.0).unwrap();
/// assert!(r.test.p_value < 1e-100);
/// assert!((r.relative_bias - 1.0).abs() < 0.01); // observed ≈ expected * (1 + 1.0)
/// ```
pub fn proportion_test(
    count: u64,
    trials: u64,
    expected_p: f64,
) -> Result<ProportionResult, StatError> {
    if trials == 0 {
        return Err(StatError::EmptyObservations);
    }
    if count > trials {
        return Err(StatError::Domain("count exceeds trials"));
    }
    if !(expected_p > 0.0 && expected_p < 1.0) {
        return Err(StatError::Domain("expected_p must be in (0, 1)"));
    }

    let n = trials as f64;
    let observed_p = count as f64 / n;
    let sd = (expected_p * (1.0 - expected_p) / n).sqrt();
    let z = (observed_p - expected_p) / sd;
    let relative_bias = observed_p / expected_p - 1.0;
    Ok(ProportionResult {
        test: TestResult {
            statistic: z,
            p_value: normal_two_sided(z),
            df: 0.0,
        },
        observed_p,
        expected_p,
        relative_bias,
        sign: if relative_bias >= 0.0 {
            BiasSign::Positive
        } else {
            BiasSign::Negative
        },
    })
}

/// Proportion test for a *pair* cell against the independence expectation.
///
/// `pair_count` is the number of times the value pair occurred, `trials` the
/// number of keystreams, and `p_first`/`p_second` the empirical single-byte
/// probabilities. The expected probability under independence is their
/// product; the reported relative bias is the paper's `|q|` from
/// `s = p (1 + q)` (Sect. 3.1), i.e. the information gained over the
/// single-byte model.
///
/// # Errors
///
/// Same as [`proportion_test`]; additionally rejects non-positive marginal
/// probabilities.
pub fn pair_proportion_test(
    pair_count: u64,
    trials: u64,
    p_first: f64,
    p_second: f64,
) -> Result<ProportionResult, StatError> {
    if !(p_first > 0.0 && p_first < 1.0 && p_second > 0.0 && p_second < 1.0) {
        return Err(StatError::Domain(
            "marginal probabilities must be in (0, 1)",
        ));
    }
    proportion_test(pair_count, trials, p_first * p_second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_sample_not_rejected() {
        let trials = 1u64 << 20;
        let count = trials / 256;
        let r = proportion_test(count, trials, 1.0 / 256.0).unwrap();
        assert!(!r.test.rejects_at(0.05));
        assert!(r.relative_bias.abs() < 1e-6);
    }

    #[test]
    fn strong_bias_rejected_with_sign() {
        let trials = 1u64 << 26;
        let p = 1.0 / 65536.0;
        // Positive FM-style bias of 2^-8.
        let count_pos = (trials as f64 * p * (1.0 + 1.0 / 256.0)).round() as u64;
        let pos = proportion_test(count_pos, trials, p).unwrap();
        assert_eq!(pos.sign, BiasSign::Positive);
        assert!(pos.relative_bias > 0.0);

        let count_neg = (trials as f64 * p * (1.0 - 1.0 / 256.0)).round() as u64;
        let neg = proportion_test(count_neg, trials, p).unwrap();
        assert_eq!(neg.sign, BiasSign::Negative);
        assert!(neg.relative_bias < 0.0);
    }

    #[test]
    fn relative_bias_matches_definition() {
        let trials = 1_000_000u64;
        let expected_p = 0.01;
        let count = 12_000u64; // observed_p = 0.012 = expected * 1.2
        let r = proportion_test(count, trials, expected_p).unwrap();
        assert!((r.relative_bias - 0.2).abs() < 1e-12);
        assert!((r.observed_p - 0.012).abs() < 1e-12);
    }

    #[test]
    fn pair_test_uses_product_of_margins() {
        let trials = 1u64 << 24;
        let p1 = 2.0 / 256.0; // a single-byte bias
        let p2 = 1.0 / 256.0;
        // Pair occurs exactly as often as independence predicts -> no rejection.
        let count = (trials as f64 * p1 * p2).round() as u64;
        let r = pair_proportion_test(count, trials, p1, p2).unwrap();
        assert!(!r.test.rejects_at(0.05));
        assert!((r.expected_p - p1 * p2).abs() < 1e-15);
    }

    #[test]
    fn validation() {
        assert!(proportion_test(1, 0, 0.5).is_err());
        assert!(proportion_test(10, 5, 0.5).is_err());
        assert!(proportion_test(1, 10, 0.0).is_err());
        assert!(proportion_test(1, 10, 1.0).is_err());
        assert!(pair_proportion_test(1, 10, 0.0, 0.5).is_err());
    }

    #[test]
    fn detectability_scales_with_samples() {
        // The same relative bias must become *more* significant with more samples;
        // this is the scaling the paper's dataset sizes are chosen around.
        let p = 1.0 / 256.0;
        let rel = 1.0 / 256.0; // a 2^-8 relative bias
        let mut last_p_value = 1.0;
        for log_n in [16u32, 20, 24, 28] {
            let trials = 1u64 << log_n;
            let count = (trials as f64 * p * (1.0 + rel)).round() as u64;
            let r = proportion_test(count, trials, p).unwrap();
            assert!(
                r.test.p_value <= last_p_value + 1e-12,
                "p-value did not shrink at n = 2^{log_n}"
            );
            last_p_value = r.test.p_value;
        }
        assert!(last_p_value < 1e-4);
    }
}
