//! Special functions: log-gamma, incomplete gamma, error function, and the
//! distribution functions (normal, chi-squared) built from them.
//!
//! Implemented from scratch (Lanczos approximation for `ln Γ`, series/continued
//! fraction for the regularized incomplete gamma, Abramowitz–Stegun style
//! rational approximation refined with series for `erf`), with accuracy around
//! `1e-12` over the ranges the hypothesis tests use.

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for the
/// complementary function otherwise (Numerical-Recipes style `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, converging quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_ga).exp()
}

/// Continued fraction (modified Lentz) evaluation of `Q(a, x)` for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_ga).exp() * h
}

/// Error function `erf(x)`, computed from the incomplete gamma function:
/// `erf(x) = sign(x) * P(1/2, x^2)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, accurate in the far tail.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x).max(0.0)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(x)`, accurate for large `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Two-sided normal tail probability `P(|Z| > |z|)`.
pub fn normal_two_sided(z: f64) -> f64 {
    (2.0 * normal_sf(z.abs())).min(1.0)
}

/// Chi-squared survival function `P(X > x)` with `df` degrees of freedom.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// Chi-squared cumulative distribution function with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(df / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = sqrt(π), Γ(3/2) = sqrt(π)/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12);
        close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-10);
        close(erf(2.0), 0.995_322_265_018_953, 1e-10);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-12);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-9);
        close(normal_sf(3.0), 1.349_898_031_630_094e-3, 1e-9);
        // Far tail must not underflow to zero prematurely.
        assert!(normal_sf(8.0) > 0.0);
        assert!(normal_sf(8.0) < 1e-14);
    }

    #[test]
    fn two_sided_tail() {
        close(normal_two_sided(1.959_963_984_540_054), 0.05, 1e-9);
        assert_eq!(normal_two_sided(0.0), 1.0);
    }

    #[test]
    fn chi2_known_quantiles() {
        // 95th percentile of chi2(1) is 3.841458820694124.
        close(chi2_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-9);
        // 95th percentile of chi2(255) is about 293.2478.
        close(chi2_sf(293.247_835, 255.0), 0.05, 1e-6);
        // CDF + SF = 1.
        for x in [0.5, 1.0, 10.0, 100.0, 300.0] {
            close(chi2_cdf(x, 255.0) + chi2_sf(x, 255.0), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (10.0, 12.0), (127.5, 140.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            close(p + q, 1.0, 1e-12);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_domain_errors() {
        assert!(gamma_p(-1.0, 1.0).is_nan());
        assert!(gamma_q(1.0, -1.0).is_nan());
        assert_eq!(gamma_p(1.0, 0.0), 0.0);
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
    }

    #[test]
    fn chi2_monotone_in_x() {
        let mut prev = 1.0;
        for i in 1..50 {
            let x = i as f64 * 10.0;
            let sf = chi2_sf(x, 255.0);
            assert!(sf <= prev + 1e-15, "sf not monotone at x={x}");
            prev = sf;
        }
    }
}
