//! Chi-squared goodness-of-fit and independence tests.

use crate::{special::chi2_sf, StatError, TestResult};

/// Chi-squared goodness-of-fit test of observed counts against expected probabilities.
///
/// This is the test the paper uses for its single-byte null hypothesis
/// ("keystream byte `Z_r` is uniformly distributed"): `observed[k]` is the
/// number of times value `k` was seen, `expected[k]` the probability under H0.
///
/// # Errors
///
/// * [`StatError::LengthMismatch`] when the slices differ in length.
/// * [`StatError::EmptyObservations`] when no observations were collected.
/// * [`StatError::InvalidExpected`] when the expected probabilities are not a
///   distribution (negative entries or sum far from one).
///
/// # Examples
///
/// ```
/// use stat_tests::chisq::chi_squared_gof;
///
/// // A heavily loaded die: face 6 comes up far too often.
/// let observed = [10u64, 12, 9, 11, 8, 150];
/// let expected = [1.0 / 6.0; 6];
/// let result = chi_squared_gof(&observed, &expected).unwrap();
/// assert!(result.p_value < 1e-10);
/// ```
pub fn chi_squared_gof(observed: &[u64], expected: &[f64]) -> Result<TestResult, StatError> {
    if observed.len() != expected.len() {
        return Err(StatError::LengthMismatch {
            observed: observed.len(),
            expected: expected.len(),
        });
    }
    let n: u64 = observed.iter().sum();
    if observed.is_empty() || n == 0 {
        return Err(StatError::EmptyObservations);
    }
    let sum_p: f64 = expected.iter().sum();
    if expected.iter().any(|&p| p < 0.0) || (sum_p - 1.0).abs() > 1e-6 {
        return Err(StatError::InvalidExpected);
    }

    let n_f = n as f64;
    let mut statistic = 0.0;
    let mut df = -1.0f64;
    for (&obs, &p) in observed.iter().zip(expected) {
        if p == 0.0 {
            if obs > 0 {
                return Err(StatError::InvalidExpected);
            }
            continue;
        }
        let exp = n_f * p;
        let diff = obs as f64 - exp;
        statistic += diff * diff / exp;
        df += 1.0;
    }
    if df < 1.0 {
        return Err(StatError::Domain("fewer than two non-empty cells"));
    }
    Ok(TestResult {
        statistic,
        p_value: chi2_sf(statistic, df),
        df,
    })
}

/// Chi-squared test against the uniform distribution over `observed.len()` cells.
///
/// Convenience wrapper for the single-byte "is `Z_r` uniform?" question.
///
/// # Errors
///
/// Same as [`chi_squared_gof`].
pub fn chi_squared_uniform(observed: &[u64]) -> Result<TestResult, StatError> {
    let k = observed.len();
    if k == 0 {
        return Err(StatError::EmptyObservations);
    }
    let expected = vec![1.0 / k as f64; k];
    chi_squared_gof(observed, &expected)
}

/// Chi-squared test of independence on an `rows x cols` contingency table.
///
/// Null hypothesis: the row variable and column variable are independent.
/// Expected cell counts are the product of the margins; degrees of freedom are
/// `(rows - 1) * (cols - 1)`.
///
/// The paper prefers the M-test for keystream byte pairs because only a few
/// cells are biased; the classical independence test is provided both as a
/// baseline (see the `mtest_vs_chisq` ablation bench) and for validating the
/// M-test implementation.
///
/// # Errors
///
/// * [`StatError::EmptyObservations`] when the table is empty or has zero total.
/// * [`StatError::LengthMismatch`] when `table.len() != rows * cols`.
pub fn chi_squared_independence(
    table: &[u64],
    rows: usize,
    cols: usize,
) -> Result<TestResult, StatError> {
    if rows == 0 || cols == 0 || table.is_empty() {
        return Err(StatError::EmptyObservations);
    }
    if table.len() != rows * cols {
        return Err(StatError::LengthMismatch {
            observed: table.len(),
            expected: rows * cols,
        });
    }
    let total: u64 = table.iter().sum();
    if total == 0 {
        return Err(StatError::EmptyObservations);
    }
    let total_f = total as f64;

    let mut row_sums = vec![0.0f64; rows];
    let mut col_sums = vec![0.0f64; cols];
    for r in 0..rows {
        for c in 0..cols {
            let v = table[r * cols + c] as f64;
            row_sums[r] += v;
            col_sums[c] += v;
        }
    }

    let mut statistic = 0.0;
    let mut used_rows = 0usize;
    let mut used_cols = 0usize;
    for (r, &rs) in row_sums.iter().enumerate() {
        if rs == 0.0 {
            continue;
        }
        used_rows += 1;
        for (c, &cs) in col_sums.iter().enumerate() {
            if cs == 0.0 {
                continue;
            }
            let expected = rs * cs / total_f;
            let diff = table[r * cols + c] as f64 - expected;
            statistic += diff * diff / expected;
        }
    }
    for &cs in &col_sums {
        if cs > 0.0 {
            used_cols += 1;
        }
    }
    if used_rows < 2 || used_cols < 2 {
        return Err(StatError::Domain(
            "independence test needs at least a 2x2 table with data",
        ));
    }
    let df = ((used_rows - 1) * (used_cols - 1)) as f64;
    Ok(TestResult {
        statistic,
        p_value: chi2_sf(statistic, df),
        df,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_is_not_rejected() {
        // Perfectly uniform counts give statistic 0 and p-value 1.
        let observed = vec![1000u64; 256];
        let r = chi_squared_uniform(&observed).unwrap();
        assert!(r.statistic < 1e-9);
        assert!(r.p_value > 0.999);
        assert_eq!(r.df, 255.0);
    }

    #[test]
    fn biased_cell_is_rejected() {
        // Simulate the Mantin-Shamir bias: value 0 twice as likely at 2^20 samples.
        let mut observed = vec![4096u64; 256];
        observed[0] = 8192;
        let r = chi_squared_uniform(&observed).unwrap();
        assert!(r.rejects(), "p = {}", r.p_value);
    }

    #[test]
    fn textbook_gof_example() {
        // 60 die rolls with the counts below: chi2 = 116/10 = 11.6, df = 5, p ≈ 0.0407.
        let observed = [8u64, 9, 19, 5, 8, 11];
        let expected = [1.0 / 6.0; 6];
        let r = chi_squared_gof(&observed, &expected).unwrap();
        assert!((r.statistic - 11.6).abs() < 1e-9);
        assert_eq!(r.df, 5.0);
        assert!((r.p_value - 0.0407).abs() < 5e-4);
    }

    #[test]
    fn input_validation() {
        assert_eq!(
            chi_squared_gof(&[1, 2], &[0.5]).unwrap_err(),
            StatError::LengthMismatch {
                observed: 2,
                expected: 1
            }
        );
        assert_eq!(
            chi_squared_gof(&[], &[]).unwrap_err(),
            StatError::EmptyObservations
        );
        assert_eq!(
            chi_squared_gof(&[0, 0], &[0.5, 0.5]).unwrap_err(),
            StatError::EmptyObservations
        );
        assert_eq!(
            chi_squared_gof(&[1, 2], &[0.9, 0.3]).unwrap_err(),
            StatError::InvalidExpected
        );
        // Observation in a zero-probability cell is impossible under H0.
        assert_eq!(
            chi_squared_gof(&[1, 2], &[0.0, 1.0]).unwrap_err(),
            StatError::InvalidExpected
        );
    }

    #[test]
    fn independence_detects_dependence() {
        // Strongly diagonal 2x2 table.
        let table = [900u64, 100, 100, 900];
        let r = chi_squared_independence(&table, 2, 2).unwrap();
        assert_eq!(r.df, 1.0);
        assert!(r.rejects());

        // Independent table: cell = row margin * col margin / total.
        let indep = [400u64, 600, 400, 600];
        let r2 = chi_squared_independence(&indep, 2, 2).unwrap();
        assert!(r2.statistic < 1e-9);
        assert!(r2.p_value > 0.99);
    }

    #[test]
    fn independence_validation() {
        assert!(chi_squared_independence(&[], 0, 0).is_err());
        assert!(chi_squared_independence(&[1, 2, 3], 2, 2).is_err());
        assert!(chi_squared_independence(&[0, 0, 0, 0], 2, 2).is_err());
    }

    #[test]
    fn gof_with_non_uniform_expected() {
        // Expected distribution with a known bias; data drawn exactly from it
        // should not be rejected.
        let mut expected = vec![1.0 / 256.0; 256];
        expected[0] = 2.0 / 256.0;
        expected[1] = 0.0;
        let mut observed: Vec<u64> = vec![100u64; 256];
        observed[0] = 200;
        observed[1] = 0;
        let r = chi_squared_gof(&observed, &expected).unwrap();
        assert!(r.p_value > 0.99);
        // One cell dropped (p = 0), so df = 254.
        assert_eq!(r.df, 254.0);
    }
}
