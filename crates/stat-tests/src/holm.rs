//! Holm–Bonferroni control of the family-wise error rate.
//!
//! The bias hunt performs thousands of hypothesis tests simultaneously (one per
//! position, or one per position pair). The paper controls the probability of
//! even a single false positive across all of them with Holm's step-down
//! method and then applies its `1e-4` rejection threshold to the *adjusted*
//! p-values.

/// Outcome of a Holm-adjusted hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolmOutcome {
    /// Index of the hypothesis in the original input order.
    pub index: usize,
    /// The raw p-value.
    pub p_value: f64,
    /// The Holm-adjusted p-value.
    pub adjusted_p: f64,
    /// Whether the hypothesis is rejected at the requested alpha.
    pub rejected: bool,
}

/// Applies the Holm–Bonferroni procedure to `p_values` at level `alpha`.
///
/// Returns one [`HolmOutcome`] per input hypothesis, in the *original* order.
/// Adjusted p-values are computed as `adj_(i) = max_{j <= i} min(1, (m - j + 1) p_(j))`
/// over the sorted sequence, the standard step-down adjustment; rejection of
/// hypothesis `i` is equivalent to `adjusted_p < alpha`.
///
/// # Examples
///
/// ```
/// use stat_tests::holm::holm;
///
/// let outcomes = holm(&[0.001, 0.4, 0.03], 0.05);
/// assert!(outcomes[0].rejected);        // 0.001 * 3 = 0.003 < 0.05
/// assert!(!outcomes[1].rejected);
/// assert!(!outcomes[2].rejected);       // 0.03 * 2 = 0.06 >= 0.05
/// ```
pub fn holm(p_values: &[f64], alpha: f64) -> Vec<HolmOutcome> {
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut outcomes = vec![
        HolmOutcome {
            index: 0,
            p_value: 0.0,
            adjusted_p: 0.0,
            rejected: false,
        };
        m
    ];

    let mut running_max = 0.0f64;
    let mut still_rejecting = true;
    for (rank, &idx) in order.iter().enumerate() {
        let p = p_values[idx];
        let scaled = ((m - rank) as f64 * p).min(1.0);
        running_max = running_max.max(scaled);
        // Step-down: once one hypothesis fails to reject, all later ones fail too.
        let reject = still_rejecting && running_max < alpha;
        if !reject {
            still_rejecting = false;
        }
        outcomes[idx] = HolmOutcome {
            index: idx,
            p_value: p,
            adjusted_p: running_max,
            rejected: reject,
        };
    }
    outcomes
}

/// Convenience helper: returns the indices of rejected hypotheses at level `alpha`.
pub fn holm_rejections(p_values: &[f64], alpha: f64) -> Vec<usize> {
    holm(p_values, alpha)
        .into_iter()
        .filter(|o| o.rejected)
        .map(|o| o.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(holm(&[], 0.05).is_empty());
        assert!(holm_rejections(&[], 0.05).is_empty());
    }

    #[test]
    fn single_hypothesis_is_plain_threshold() {
        let out = holm(&[0.01], 0.05);
        assert!(out[0].rejected);
        assert!((out[0].adjusted_p - 0.01).abs() < 1e-15);
        assert!(!holm(&[0.06], 0.05)[0].rejected);
    }

    #[test]
    fn textbook_example() {
        // p-values 0.01, 0.04, 0.03, 0.005 at alpha 0.05:
        // sorted: 0.005*4=0.02 reject, 0.01*3=0.03 reject, 0.03*2=0.06 stop, 0.04 not tested.
        let out = holm(&[0.01, 0.04, 0.03, 0.005], 0.05);
        assert!(out[0].rejected);
        assert!(!out[1].rejected);
        assert!(!out[2].rejected);
        assert!(out[3].rejected);
        assert_eq!(
            holm_rejections(&[0.01, 0.04, 0.03, 0.005], 0.05),
            vec![0, 3]
        );
    }

    #[test]
    fn adjusted_p_values_are_monotone_in_sorted_order() {
        let ps = [0.001, 0.5, 0.0004, 0.02, 0.9, 0.0001];
        let out = holm(&ps, 0.05);
        let mut sorted: Vec<&HolmOutcome> = out.iter().collect();
        sorted.sort_by(|a, b| a.p_value.partial_cmp(&b.p_value).unwrap());
        for w in sorted.windows(2) {
            assert!(w[0].adjusted_p <= w[1].adjusted_p + 1e-15);
        }
    }

    #[test]
    fn step_down_stops_at_first_failure() {
        // Even if a later (larger) raw p-value would pass its own threshold,
        // it must not be rejected once an earlier one failed.
        let ps = [0.02, 0.021, 0.0001];
        // sorted: 0.0001*3 = 0.0003 reject; 0.02*2 = 0.04 >= alpha 0.03 -> stop.
        let out = holm(&ps, 0.03);
        assert!(out[2].rejected);
        assert!(!out[0].rejected);
        assert!(!out[1].rejected);
    }

    #[test]
    fn controls_family_wise_error_more_strictly_than_raw() {
        // 1000 true-null p-values uniformly spaced: raw thresholding at 0.05 would
        // "find" ~50 biases; Holm finds none.
        let ps: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        assert!(holm_rejections(&ps, 0.05).is_empty());
    }
}
