//! Statistical hypothesis tests for soundly detecting RC4 keystream biases.
//!
//! Section 3.1 of the paper replaces "stare at probability plots" with a
//! sound, large-scale methodology:
//!
//! * **Single-byte biases** — null hypothesis: the keystream byte is uniformly
//!   distributed. Tested with a chi-squared goodness-of-fit test
//!   ([`chisq::chi_squared_gof`]).
//! * **Double-byte biases** — null hypothesis: the two bytes are *independent*
//!   (not: uniform — single-byte biases would otherwise masquerade as pair
//!   biases). Tested with the Fuchs–Kenett M-test ([`mtest::m_test`]), which is
//!   asymptotically more powerful than chi-squared when only a few cells
//!   (outliers) are biased, exactly the regime of the Fluhrer–McGrew biases.
//! * **Which values are biased** — per-cell two-sided proportion tests
//!   ([`proportion::proportion_test`]).
//! * **Multiple testing** — the family-wise error rate over thousands of
//!   simultaneous tests is controlled with Holm's method ([`holm::holm`]);
//!   the paper rejects only when the adjusted p-value is below `1e-4`.
//!
//! The underlying special functions (log-gamma, regularized incomplete gamma,
//! error function, normal and chi-squared distributions) are implemented from
//! scratch in [`special`] — this crate has no numerical dependencies, mirroring
//! the role R played in the original work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chisq;
pub mod holm;
pub mod mtest;
pub mod proportion;
pub mod special;

use serde::{Deserialize, Serialize};

/// Significance threshold used throughout the paper: reject H0 when `p < 1e-4`.
pub const PAPER_ALPHA: f64 = 1e-4;

/// Outcome of a single hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The value of the test statistic.
    pub statistic: f64,
    /// The (two-sided where applicable) p-value.
    pub p_value: f64,
    /// Degrees of freedom, when meaningful for the test (0 otherwise).
    pub df: f64,
}

impl TestResult {
    /// Returns `true` if the null hypothesis is rejected at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Returns `true` if the null hypothesis is rejected at the paper's `1e-4` level.
    pub fn rejects(&self) -> bool {
        self.rejects_at(PAPER_ALPHA)
    }
}

/// Errors returned by the hypothesis tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatError {
    /// The observation vector was empty or all-zero.
    EmptyObservations,
    /// Expected probabilities do not form a distribution (don't sum to ~1, or contain
    /// non-positive entries where observations exist).
    InvalidExpected,
    /// Mismatched input lengths.
    LengthMismatch {
        /// Length of the observations input.
        observed: usize,
        /// Length of the expected-probabilities input.
        expected: usize,
    },
    /// A numeric argument was out of its valid domain.
    Domain(&'static str),
}

impl core::fmt::Display for StatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatError::EmptyObservations => write!(f, "observations are empty or all zero"),
            StatError::InvalidExpected => {
                write!(f, "expected probabilities do not form a valid distribution")
            }
            StatError::LengthMismatch { observed, expected } => write!(
                f,
                "length mismatch: {observed} observed cells vs {expected} expected cells"
            ),
            StatError::Domain(what) => write!(f, "argument out of domain: {what}"),
        }
    }
}

impl std::error::Error for StatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_result_thresholds() {
        let r = TestResult {
            statistic: 10.0,
            p_value: 1e-5,
            df: 255.0,
        };
        assert!(r.rejects());
        assert!(r.rejects_at(0.05));
        let weak = TestResult {
            statistic: 1.0,
            p_value: 0.3,
            df: 1.0,
        };
        assert!(!weak.rejects());
        assert!(!weak.rejects_at(0.05));
    }

    #[test]
    fn error_display() {
        let e = StatError::LengthMismatch {
            observed: 10,
            expected: 256,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("256"));
        assert!(StatError::EmptyObservations.to_string().contains("empty"));
    }
}
