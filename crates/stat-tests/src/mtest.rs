//! The Fuchs–Kenett M-test for detecting outlying cells in a multinomial.
//!
//! The M-test looks at the *maximum* standardized cell residual instead of the
//! sum of squared residuals. When only a handful of cells deviate from the null
//! (e.g. at most 8 of the 65536 digraph values at a given position are biased,
//! as with the Fluhrer–McGrew biases), the maximum statistic is asymptotically
//! more powerful than the chi-squared statistic, which dilutes a few strong
//! outliers across all cells. This is exactly why the paper adopts it for the
//! double-byte independence tests.

use crate::{special::normal_two_sided, StatError, TestResult};

/// Result of an M-test, including which cell was the most extreme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MTestResult {
    /// The underlying statistic / p-value / degrees-of-freedom triple.
    pub test: TestResult,
    /// Index of the cell with the largest standardized residual.
    pub worst_cell: usize,
    /// Signed standardized residual of that cell (positive = over-represented).
    pub worst_residual: f64,
}

/// Runs the Fuchs–Kenett M-test of `observed` counts against `expected` cell probabilities.
///
/// The statistic is `M = max_k |N_k - n p_k| / sqrt(n p_k (1 - p_k))`; the
/// p-value applies a Bonferroni bound over the `k` cells to the two-sided
/// normal tail of the maximum, which is the standard (slightly conservative)
/// calibration of the test.
///
/// # Errors
///
/// * [`StatError::LengthMismatch`] when the slices differ in length.
/// * [`StatError::EmptyObservations`] when no observations were collected.
/// * [`StatError::InvalidExpected`] when `expected` is not a probability vector.
///
/// # Examples
///
/// ```
/// use stat_tests::mtest::m_test;
///
/// // One cell out of 256 carries a strong positive bias.
/// let mut observed = vec![10_000u64; 256];
/// observed[42] = 11_000;
/// let expected = vec![1.0 / 256.0; 256];
/// let r = m_test(&observed, &expected).unwrap();
/// assert_eq!(r.worst_cell, 42);
/// assert!(r.test.p_value < 1e-4);
/// ```
pub fn m_test(observed: &[u64], expected: &[f64]) -> Result<MTestResult, StatError> {
    if observed.len() != expected.len() {
        return Err(StatError::LengthMismatch {
            observed: observed.len(),
            expected: expected.len(),
        });
    }
    let n: u64 = observed.iter().sum();
    if observed.is_empty() || n == 0 {
        return Err(StatError::EmptyObservations);
    }
    let sum_p: f64 = expected.iter().sum();
    if expected.iter().any(|&p| p < 0.0) || (sum_p - 1.0).abs() > 1e-6 {
        return Err(StatError::InvalidExpected);
    }

    let n_f = n as f64;
    let mut worst_cell = 0usize;
    let mut worst_abs = -1.0f64;
    let mut worst_signed = 0.0f64;
    let mut cells = 0usize;
    for (k, (&obs, &p)) in observed.iter().zip(expected).enumerate() {
        if p <= 0.0 || p >= 1.0 {
            // Degenerate cells carry no information about outliers.
            if p == 0.0 && obs > 0 {
                return Err(StatError::InvalidExpected);
            }
            continue;
        }
        cells += 1;
        let mean = n_f * p;
        let sd = (n_f * p * (1.0 - p)).sqrt();
        let z = (obs as f64 - mean) / sd;
        if z.abs() > worst_abs {
            worst_abs = z.abs();
            worst_signed = z;
            worst_cell = k;
        }
    }
    if cells == 0 {
        return Err(StatError::Domain("no informative cells"));
    }

    let single_cell_p = normal_two_sided(worst_abs);
    let p_value = (single_cell_p * cells as f64).min(1.0);
    Ok(MTestResult {
        test: TestResult {
            statistic: worst_abs,
            p_value,
            df: cells as f64,
        },
        worst_cell,
        worst_residual: worst_signed,
    })
}

/// M-test of independence for a two-dimensional contingency table.
///
/// The null hypothesis is that the row and column variables are independent;
/// expected cell probabilities are the products of the empirical margins. This
/// is the double-byte test from Section 3.1: it flags a keystream byte *pair*
/// as dependent even in the presence of single-byte biases, because those
/// biases are absorbed into the margins.
///
/// # Errors
///
/// * [`StatError::EmptyObservations`] when the table is empty or all-zero.
/// * [`StatError::LengthMismatch`] when `table.len() != rows * cols`.
pub fn m_test_independence(
    table: &[u64],
    rows: usize,
    cols: usize,
) -> Result<MTestResult, StatError> {
    if rows == 0 || cols == 0 || table.is_empty() {
        return Err(StatError::EmptyObservations);
    }
    if table.len() != rows * cols {
        return Err(StatError::LengthMismatch {
            observed: table.len(),
            expected: rows * cols,
        });
    }
    let total: u64 = table.iter().sum();
    if total == 0 {
        return Err(StatError::EmptyObservations);
    }
    let total_f = total as f64;

    let mut row_p = vec![0.0f64; rows];
    let mut col_p = vec![0.0f64; cols];
    for r in 0..rows {
        for c in 0..cols {
            let v = table[r * cols + c] as f64;
            row_p[r] += v;
            col_p[c] += v;
        }
    }
    for p in row_p.iter_mut() {
        *p /= total_f;
    }
    for p in col_p.iter_mut() {
        *p /= total_f;
    }

    let expected: Vec<f64> = (0..rows * cols)
        .map(|idx| row_p[idx / cols] * col_p[idx % cols])
        .collect();
    // Renormalize to absorb floating point drift so m_test's validation passes.
    let sum: f64 = expected.iter().sum();
    let expected: Vec<f64> = expected.iter().map(|p| p / sum).collect();
    m_test(table, &expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_outlier_cell() {
        let mut observed = vec![1_000u64; 65536 / 64]; // 1024 cells to keep the test fast
        observed[77] = 1_400;
        let expected = vec![1.0 / observed.len() as f64; observed.len()];
        let r = m_test(&observed, &expected).unwrap();
        assert_eq!(r.worst_cell, 77);
        assert!(r.worst_residual > 0.0);
        assert!(r.test.rejects());
    }

    #[test]
    fn detects_negative_bias() {
        let mut observed = vec![10_000u64; 256];
        observed[3] = 8_500;
        let expected = vec![1.0 / 256.0; 256];
        let r = m_test(&observed, &expected).unwrap();
        assert_eq!(r.worst_cell, 3);
        assert!(r.worst_residual < 0.0);
        assert!(r.test.rejects());
    }

    #[test]
    fn uniform_data_not_rejected() {
        let observed = vec![5_000u64; 256];
        let expected = vec![1.0 / 256.0; 256];
        let r = m_test(&observed, &expected).unwrap();
        assert!(!r.test.rejects_at(0.05));
        assert_eq!(r.test.p_value, 1.0);
    }

    #[test]
    fn more_powerful_than_chisq_for_single_outlier() {
        // With many cells and one moderately biased cell, the M-test should give a
        // smaller p-value than the chi-squared GoF test.
        let cells = 4096usize;
        let mut observed = vec![2_000u64; cells];
        observed[123] = 2_350;
        let expected = vec![1.0 / cells as f64; cells];
        let m = m_test(&observed, &expected).unwrap();
        let chi = crate::chisq::chi_squared_gof(&observed, &expected).unwrap();
        assert!(
            m.test.p_value < chi.p_value,
            "m-test p {} >= chi2 p {}",
            m.test.p_value,
            chi.p_value
        );
    }

    #[test]
    fn independence_with_biased_margins_but_independent_cells() {
        // Margins are biased (row 0 much more likely) but rows/cols independent:
        // the independence M-test must NOT reject.
        let rows = 4;
        let cols = 4;
        let row_w = [8u64, 1, 1, 1];
        let col_w = [5u64, 3, 1, 1];
        let mut table = vec![0u64; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                table[r * cols + c] = row_w[r] * col_w[c] * 1000;
            }
        }
        let r = m_test_independence(&table, rows, cols).unwrap();
        assert!(!r.test.rejects_at(0.05), "p = {}", r.test.p_value);
    }

    #[test]
    fn independence_detects_one_dependent_pair() {
        let rows = 16;
        let cols = 16;
        let mut table = vec![10_000u64; rows * cols];
        // Inject dependence into a single pair, like a Fluhrer-McGrew digraph.
        table[5 * cols + 9] = 12_000;
        let r = m_test_independence(&table, rows, cols).unwrap();
        assert!(r.test.rejects());
        assert_eq!(r.worst_cell, 5 * cols + 9);
    }

    #[test]
    fn input_validation() {
        assert!(m_test(&[], &[]).is_err());
        assert!(m_test(&[1, 2], &[0.5]).is_err());
        assert!(m_test(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(m_test(&[1, 1], &[0.7, 0.7]).is_err());
        assert!(m_test_independence(&[1, 2, 3], 2, 2).is_err());
        assert!(m_test_independence(&[0; 4], 2, 2).is_err());
    }
}
