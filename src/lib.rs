//! Umbrella crate for the RC4-bias reproduction workspace.
//!
//! This package exists to anchor the repository-level integration tests
//! (`tests/`) and attack demos (`examples/`); the implementation lives in the
//! workspace crates, re-exported here for convenience:
//!
//! * [`crypto_prims`] — SHA-1/SHA-256/MD5, HMAC, TLS PRF, CRC-32, Michael.
//! * [`rc4`] — the RC4 cipher (KSA, PRGA, RC4-drop\[n\]).
//! * [`rc4_stats`] — keystream statistics datasets and the worker pool.
//! * [`stat_tests`] — chi-squared, M-test, proportion tests, Holm correction.
//! * [`rc4_biases`] — the analytic catalogue of keystream biases.
//! * [`plaintext_recovery`] — Bayesian plaintext recovery (Algorithms 1–2).
//! * [`wpa_tkip`] — the TKIP substrate and the Section-5 attack.
//! * [`tls_rc4`] — the TLS substrate and the Section-6 cookie attack.
//! * [`rc4_attacks`] — experiment drivers for every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crypto_prims;
pub use plaintext_recovery;
pub use rc4;
pub use rc4_attacks;
pub use rc4_biases;
pub use rc4_stats;
pub use stat_tests;
pub use tls_rc4;
pub use wpa_tkip;
